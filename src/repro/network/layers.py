"""Layer primitives for the feed-forward substrate.

Two layer types are provided:

* :class:`DenseLayer` — the fully-connected layer of the paper's
  multilayer perceptron model (Equations 1-3): every neuron of layer
  ``l`` receives a weighted sum of all outputs of layer ``l-1`` and
  applies the squashing function.
* :class:`Conv1DLayer` — a one-dimensional convolutional layer with a
  limited receptive field and shared weights, matching the paper's
  Section VI discussion of convolutional networks (each neuron of layer
  ``l`` is connected to ``R`` neurons of layer ``l-1`` only, and the
  weight values are shared across positions).

Both expose the same protocol (``forward``, ``pre_activation``,
``dense_weights``, ``max_abs_weight``, ``spec``) so the fault-injection
engine and the bound calculators treat them uniformly.  Biases are
supported but, following the paper's notational convention (footnote 4),
are modelled as the weight from an always-correct constant neuron: they
never fail and are excluded from ``max_abs_weight`` by default.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .activations import Activation, get_activation
from .initializers import Initializer, get_initializer

__all__ = ["Layer", "DenseLayer", "Conv1DLayer", "layer_from_spec"]


class Layer:
    """Protocol base class for network layers."""

    n_in: int
    n_out: int
    activation: Activation

    # -- forward -----------------------------------------------------------

    def pre_activation(self, x: np.ndarray) -> np.ndarray:
        """The received sums ``s_j`` (Equation 3), before squashing."""
        raise NotImplementedError

    def forward(self, x: np.ndarray) -> np.ndarray:
        """``y_j = phi(s_j)`` (Equation 2)."""
        return self.activation(self.pre_activation(x))

    # -- structural metadata ------------------------------------------------

    def dense_weights(self) -> np.ndarray:
        """Equivalent dense ``(n_out, n_in)`` weight matrix.

        For dense layers this is the weight matrix itself (a view);
        convolutional layers materialise their sparse banded equivalent.
        Used by the fault injector (synapse faults) and the topology
        exporter.
        """
        raise NotImplementedError

    def max_abs_weight(self) -> float:
        """``w_m`` — the maximum synaptic weight norm into this layer.

        For convolutional layers this runs over the ``R`` *distinct*
        kernel values only (paper, Section VI): zero entries of the
        dense equivalent are structural absences, not synapses.
        """
        raise NotImplementedError

    def parameters(self) -> dict[str, np.ndarray]:
        """Trainable arrays, by name (views — mutate to update)."""
        raise NotImplementedError

    def spec(self) -> dict:
        raise NotImplementedError

    @property
    def num_synapses(self) -> int:
        """Number of physical synapses entering this layer."""
        return int(np.count_nonzero(self.synapse_mask()))

    def synapse_mask(self) -> np.ndarray:
        """Boolean ``(n_out, n_in)`` mask of physically-present synapses."""
        return np.ones((self.n_out, self.n_in), dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n_in={self.n_in}, n_out={self.n_out}, "
            f"activation={self.activation!r})"
        )


class DenseLayer(Layer):
    """Fully-connected layer ``y = phi(W x + b)``.

    Parameters
    ----------
    n_in, n_out:
        Fan-in / fan-out.
    activation:
        Activation spec (name, dict or instance); see
        :func:`repro.network.activations.get_activation`.
    weights, bias:
        Explicit arrays (used by deserialisation and worst-case
        constructions).  ``weights`` has shape ``(n_out, n_in)``.
    init:
        Initializer spec used when ``weights`` is not given.
    use_bias:
        When ``False`` the layer is bias-free, exactly matching the
        paper's computation model.
    rng:
        Generator for initialisation (defaults to a fresh default_rng).
    """

    def __init__(
        self,
        n_in: int,
        n_out: int,
        activation: "str | dict | Activation" = "sigmoid",
        *,
        weights: Optional[np.ndarray] = None,
        bias: Optional[np.ndarray] = None,
        init: "str | dict | Initializer" = "xavier_uniform",
        use_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if n_in <= 0 or n_out <= 0:
            raise ValueError(f"layer dimensions must be positive, got ({n_in}, {n_out})")
        self.n_in = int(n_in)
        self.n_out = int(n_out)
        self.activation = get_activation(activation)
        self.use_bias = bool(use_bias)

        if weights is not None:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != (self.n_out, self.n_in):
                raise ValueError(
                    f"weights shape {weights.shape} != ({self.n_out}, {self.n_in})"
                )
            self.weights = weights.copy()
        else:
            rng = rng if rng is not None else np.random.default_rng()
            initializer = get_initializer(init)
            self.weights = np.asarray(
                initializer((self.n_out, self.n_in), rng), dtype=np.float64
            )

        if bias is not None:
            bias = np.asarray(bias, dtype=np.float64)
            if bias.shape != (self.n_out,):
                raise ValueError(f"bias shape {bias.shape} != ({self.n_out},)")
            self.bias = bias.copy()
            self.use_bias = True
        else:
            self.bias = np.zeros(self.n_out, dtype=np.float64)

    # -- forward -----------------------------------------------------------

    def pre_activation(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        s = x @ self.weights.T
        if self.use_bias:
            s = s + self.bias
        return s

    # -- metadata ------------------------------------------------------------

    def dense_weights(self) -> np.ndarray:
        return self.weights

    def max_abs_weight(self) -> float:
        return float(np.max(np.abs(self.weights))) if self.weights.size else 0.0

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"weights": self.weights}
        if self.use_bias:
            params["bias"] = self.bias
        return params

    def spec(self) -> dict:
        return {
            "type": "dense",
            "n_in": self.n_in,
            "n_out": self.n_out,
            "activation": self.activation.spec(),
            "use_bias": self.use_bias,
        }

    def copy(self) -> "DenseLayer":
        return DenseLayer(
            self.n_in,
            self.n_out,
            self.activation,
            weights=self.weights,
            bias=self.bias if self.use_bias else None,
            use_bias=self.use_bias,
        )


class Conv1DLayer(Layer):
    """1-D convolution with receptive field ``receptive_field`` and stride 1.

    Output position ``p`` (for ``p in 0..n_out-1``) computes::

        y_p = phi( sum_{r=0}^{R-1} kernel[r] * x[p + r] + bias )

    i.e. 'valid' convolution, ``n_out = n_in - R + 1``.  The kernel is
    shared across positions (weight sharing), and each output neuron has
    a receptive field of exactly ``R`` input neurons — the two
    properties the paper uses in Section VI to refine the bound (the
    max-weight constraint runs over the R distinct kernel values only).
    """

    def __init__(
        self,
        n_in: int,
        receptive_field: int,
        activation: "str | dict | Activation" = "sigmoid",
        *,
        kernel: Optional[np.ndarray] = None,
        bias: float = 0.0,
        init: "str | dict | Initializer" = "xavier_uniform",
        use_bias: bool = True,
        rng: Optional[np.random.Generator] = None,
    ):
        if receptive_field <= 0:
            raise ValueError(f"receptive field must be positive, got {receptive_field}")
        if n_in < receptive_field:
            raise ValueError(
                f"n_in={n_in} smaller than receptive field {receptive_field}"
            )
        self.n_in = int(n_in)
        self.receptive_field = int(receptive_field)
        self.n_out = self.n_in - self.receptive_field + 1
        self.activation = get_activation(activation)
        self.use_bias = bool(use_bias)

        if kernel is not None:
            kernel = np.asarray(kernel, dtype=np.float64)
            if kernel.shape != (self.receptive_field,):
                raise ValueError(
                    f"kernel shape {kernel.shape} != ({self.receptive_field},)"
                )
            self.kernel = kernel.copy()
        else:
            rng = rng if rng is not None else np.random.default_rng()
            initializer = get_initializer(init)
            # Treat the kernel as a (1, R) weight row for fan computations.
            self.kernel = np.asarray(
                initializer((1, self.receptive_field), rng), dtype=np.float64
            ).ravel()

        self.bias = np.full(1, float(bias), dtype=np.float64)

    # -- forward -----------------------------------------------------------

    def pre_activation(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        windows = np.lib.stride_tricks.sliding_window_view(
            x, self.receptive_field, axis=1
        )  # (B, n_out, R)
        s = windows @ self.kernel
        if self.use_bias:
            s = s + self.bias[0]
        return s[0] if squeeze else s

    # -- metadata ------------------------------------------------------------

    def dense_weights(self) -> np.ndarray:
        """Banded ``(n_out, n_in)`` matrix with the kernel on each row."""
        dense = np.zeros((self.n_out, self.n_in), dtype=np.float64)
        for p in range(self.n_out):
            dense[p, p : p + self.receptive_field] = self.kernel
        return dense

    def synapse_mask(self) -> np.ndarray:
        mask = np.zeros((self.n_out, self.n_in), dtype=bool)
        for p in range(self.n_out):
            mask[p, p : p + self.receptive_field] = True
        return mask

    def max_abs_weight(self) -> float:
        return float(np.max(np.abs(self.kernel))) if self.kernel.size else 0.0

    def parameters(self) -> dict[str, np.ndarray]:
        params = {"kernel": self.kernel}
        if self.use_bias:
            params["bias"] = self.bias
        return params

    def spec(self) -> dict:
        return {
            "type": "conv1d",
            "n_in": self.n_in,
            "receptive_field": self.receptive_field,
            "activation": self.activation.spec(),
            "use_bias": self.use_bias,
        }

    def copy(self) -> "Conv1DLayer":
        return Conv1DLayer(
            self.n_in,
            self.receptive_field,
            self.activation,
            kernel=self.kernel,
            bias=float(self.bias[0]),
            use_bias=self.use_bias,
        )


def layer_from_spec(
    spec: dict,
    *,
    rng: Optional[np.random.Generator] = None,
) -> Layer:
    """Rebuild a layer from its :meth:`Layer.spec` dictionary."""
    kind = spec.get("type")
    if kind == "dense":
        return DenseLayer(
            spec["n_in"],
            spec["n_out"],
            spec["activation"],
            use_bias=spec.get("use_bias", True),
            rng=rng,
        )
    if kind == "conv1d":
        return Conv1DLayer(
            spec["n_in"],
            spec["receptive_field"],
            spec["activation"],
            use_bias=spec.get("use_bias", True),
            rng=rng,
        )
    raise KeyError(f"unknown layer type {kind!r}")
