"""Analysis utilities: Lipschitz estimation (Figure 2), topology export,
parallel parameter sweeps, and error statistics / shape checks.
"""

from .lipschitz import (
    estimate_lipschitz,
    estimate_network_lipschitz,
    sigmoid_profile,
    slope_at_origin,
)
from .stats import (
    Summary,
    bootstrap_ci,
    dominance_ratio,
    is_monotone,
    loglog_slope,
    summarize,
)
from .pruning import certified_prune, lowest_influence_neurons, prune_neurons
from .reporting import result_to_markdown, results_to_markdown, write_markdown_report
from .sweep import SweepResult, default_workers, grid_configurations, parameter_sweep
from .topology import figure1_network_stats, to_graph, topology_stats

__all__ = [
    "estimate_lipschitz",
    "slope_at_origin",
    "sigmoid_profile",
    "estimate_network_lipschitz",
    "to_graph",
    "topology_stats",
    "figure1_network_stats",
    "SweepResult",
    "grid_configurations",
    "parameter_sweep",
    "default_workers",
    "Summary",
    "summarize",
    "bootstrap_ci",
    "loglog_slope",
    "is_monotone",
    "dominance_ratio",
    "prune_neurons",
    "lowest_influence_neurons",
    "certified_prune",
    "result_to_markdown",
    "results_to_markdown",
    "write_markdown_report",
]
