"""Lipschitz-constant estimation and the Figure-2 K-tuning helpers.

The paper's Figure 2 shows the sigmoid "centered around 0 and tuned
with several values of K: the larger is K, the steeper is the slope
and the more discriminating is the activation function".  This module
verifies those analytics empirically:

* :func:`estimate_lipschitz` — empirical ``sup |phi(x)-phi(y)|/|x-y|``
  over dense samples (must match the declared ``K``);
* :func:`sigmoid_profile` — the Figure-2 curves themselves;
* :func:`estimate_network_lipschitz` — a lower bound on the *network's*
  end-to-end Lipschitz constant via gradient sampling (useful to see
  the ``K**L`` compounding that drives Fep).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..network.activations import Activation, Sigmoid
from ..network.model import FeedForwardNetwork

__all__ = [
    "estimate_lipschitz",
    "sigmoid_profile",
    "slope_at_origin",
    "estimate_network_lipschitz",
]


def estimate_lipschitz(
    activation: Activation,
    *,
    lo: float = -10.0,
    hi: float = 10.0,
    n_points: int = 20001,
) -> float:
    """Empirical Lipschitz constant over a dense grid on ``[lo, hi]``.

    Uses adjacent-difference quotients; for the C^1 activations here
    this converges to ``sup |phi'|`` from below as the grid refines.
    """
    if n_points < 3:
        raise ValueError(f"n_points must be >= 3, got {n_points}")
    xs = np.linspace(lo, hi, n_points)
    ys = activation(xs)
    quotients = np.abs(np.diff(ys) / np.diff(xs))
    return float(quotients.max())


def slope_at_origin(activation: Activation, h: float = 1e-6) -> float:
    """Central-difference slope at 0 — equals ``K`` for the tuned
    sigmoid (its derivative peaks at the origin)."""
    y1 = activation(np.array([h]))
    y0 = activation(np.array([-h]))
    return float((y1[0] - y0[0]) / (2 * h))


def sigmoid_profile(
    ks: Sequence[float],
    *,
    lo: float = -6.0,
    hi: float = 6.0,
    n_points: int = 241,
) -> dict[float, tuple[np.ndarray, np.ndarray]]:
    """The Figure-2 data: ``{k: (x, sigmoid_k(x))}`` for each tuning.

    Each curve is centred at 0 with value 1/2 there; steeper for
    larger ``k``.
    """
    xs = np.linspace(lo, hi, n_points)
    return {float(k): (xs, Sigmoid(k)(xs)) for k in ks}


def estimate_network_lipschitz(
    network: FeedForwardNetwork,
    *,
    n_samples: int = 512,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Empirical lower bound on the end-to-end Lipschitz constant.

    Samples input pairs in the cube and maximises the difference
    quotient ``|F(x) - F(y)| / |x - y|_2``.  The analytic upper bound
    is ``prod_l (K * N_{l-1}^(1/2) * w_m^(l))``-ish; the empirical
    value exhibits the qualitative ``K**L`` growth the Fep predicts.
    """
    rng = rng if rng is not None else np.random.default_rng(0)
    d = network.input_dim
    a = rng.random((n_samples, d))
    b = np.clip(a + rng.normal(0.0, 0.05, size=(n_samples, d)), 0.0, 1.0)
    dist = np.linalg.norm(a - b, axis=1)
    keep = dist > 1e-12
    fa = network.forward(a[keep])
    fb = network.forward(b[keep])
    num = np.abs(fa - fb).max(axis=1)
    return float((num / dist[keep]).max())
