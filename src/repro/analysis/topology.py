"""Topology export and structural statistics (networkx-backed).

The paper's message is that robustness is computable "only ... looking
at the topology of the network"; this module makes the topology a
first-class object: a directed weighted graph with input clients,
neuron processes and the output client, plus the summary statistics
the bounds consume.
"""

from __future__ import annotations

from typing import Optional

import networkx as nx
import numpy as np

from ..network.model import FeedForwardNetwork

__all__ = ["to_graph", "topology_stats", "figure1_network_stats"]


def to_graph(network: FeedForwardNetwork) -> "nx.DiGraph":
    """Directed graph of the network.

    Nodes are labelled ``("in", i)``, ``(l, i)`` for neurons (1-based
    layer), and ``("out", j)``; node attribute ``role`` distinguishes
    clients from neurons (inputs and output are clients — dotted in
    the paper's Figure 1 — and cannot fail).  Edge attribute
    ``weight`` carries the synaptic weight.
    """
    g = nx.DiGraph()
    for i in range(network.input_dim):
        g.add_node(("in", i), role="client", layer=0)
    for l, width in enumerate(network.layer_sizes, start=1):
        for i in range(width):
            g.add_node((l, i), role="neuron", layer=l)
    for j in range(network.n_outputs):
        g.add_node(("out", j), role="client", layer=network.depth + 1)

    for l0, layer in enumerate(network.layers):
        dense = layer.dense_weights()
        mask = layer.synapse_mask()
        src_label = (
            (lambda i: ("in", i)) if l0 == 0 else (lambda i, _l=l0: (_l, i))
        )
        for j in range(layer.n_out):
            for i in range(layer.n_in):
                if mask[j, i]:
                    g.add_edge(src_label(i), (l0 + 1, j), weight=float(dense[j, i]))
    for j in range(network.n_outputs):
        for i in range(network.layer_sizes[-1]):
            g.add_edge(
                (network.depth, i),
                ("out", j),
                weight=float(network.output_weights[j, i]),
            )
    return g


def topology_stats(network: FeedForwardNetwork) -> dict:
    """Structural summary: everything the bounds read off the topology."""
    g = to_graph(network)
    neuron_nodes = [n for n, d in g.nodes(data=True) if d["role"] == "neuron"]
    weights = np.array([abs(d["weight"]) for _, _, d in g.edges(data=True)])
    return {
        "depth": network.depth,
        "input_dim": network.input_dim,
        "layer_sizes": network.layer_sizes,
        "n_neurons": len(neuron_nodes),
        "n_synapses": g.number_of_edges(),
        "weight_maxes": network.weight_maxes(),
        "global_weight_max": float(weights.max()) if weights.size else 0.0,
        "mean_abs_weight": float(weights.mean()) if weights.size else 0.0,
        "lipschitz": network.lipschitz_constant,
        "is_dag": nx.is_directed_acyclic_graph(g),
        # weight=None: count hops, not synaptic-weight sums.
        "longest_path_len": int(nx.dag_longest_path_length(g, weight=None)),
    }


def figure1_network_stats(network: FeedForwardNetwork) -> dict:
    """The Figure-1 checkables: d, L, per-layer widths, client roles.

    The paper's example has ``d=3, L=3, N=(4,3,4)``; the Fig-1 bench
    builds exactly that shape and asserts these invariants.
    """
    g = to_graph(network)
    clients = [n for n, d in g.nodes(data=True) if d["role"] == "client"]
    stats = topology_stats(network)
    stats.update(
        {
            "n_clients": len(clients),
            "clients_have_no_failure_semantics": all(
                isinstance(n[0], str) for n in clients
            ),
            # Every neuron of layer l-1 is "on the left of" layer l: full
            # bipartite wiring for dense stages.
            "path_length_input_to_output": stats["longest_path_len"],
        }
    )
    return stats
