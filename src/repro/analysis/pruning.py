"""Pruning: the dual of crashing (paper, Introduction).

"If the failures of a number of neurons do not impact the overall
result, then these neurons could have been eliminated from the design
of that network in the first place."  Pruning makes that observation
operational: removing a neuron is *exactly* a permanent crash, so

* the accuracy cost of pruning a set S is bounded by the crash-mode
  Fep of S's per-layer distribution (testable), and
* a tolerated distribution is a *certified pruning budget*: the
  pruned network provably stays an epsilon-approximation.

Unlike a crash, pruning actually shrinks the network, so this module
also rebuilds the smaller :class:`FeedForwardNetwork` (used to trade
certified robustness back for memory/latency when deploying on
constrained hardware).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.fep import network_fep
from ..network.layers import DenseLayer
from ..network.model import FeedForwardNetwork, NeuronAddress

__all__ = [
    "prune_neurons",
    "lowest_influence_neurons",
    "certified_prune",
]


def prune_neurons(
    network: FeedForwardNetwork,
    addresses: Iterable["NeuronAddress | tuple[int, int]"],
) -> FeedForwardNetwork:
    """Physically remove the listed neurons (dense networks only).

    Equivalent to permanently crashing them: the returned network's
    output equals the crashed network's output for every input (tested
    property).  Removing all of a layer is rejected.
    """
    victims: dict[int, set[int]] = {}
    for addr in addresses:
        addr = network.check_address(addr)
        victims.setdefault(addr.layer, set()).add(addr.index)
    for layer in network.layers:
        if not isinstance(layer, DenseLayer):
            raise TypeError(
                "prune_neurons supports dense layers only "
                f"(got {type(layer).__name__})"
            )
    for l, idxs in victims.items():
        if len(idxs) >= network.layer_sizes[l - 1]:
            raise ValueError(f"cannot prune all {len(idxs)} neurons of layer {l}")

    keep_per_layer = []
    for l, width in enumerate(network.layer_sizes, start=1):
        gone = victims.get(l, set())
        keep_per_layer.append(np.array([i for i in range(width) if i not in gone]))

    new_layers = []
    prev_keep: Optional[np.ndarray] = None
    for l0, layer in enumerate(network.layers):
        w = layer.dense_weights()
        keep = keep_per_layer[l0]
        w_new = w[keep, :]
        if prev_keep is not None:
            w_new = w_new[:, prev_keep]
        bias_new = layer.bias[keep] if layer.use_bias else None
        new_layers.append(
            DenseLayer(
                w_new.shape[1],
                w_new.shape[0],
                layer.activation,
                weights=w_new,
                bias=bias_new,
                use_bias=layer.use_bias,
            )
        )
        prev_keep = keep
    out_w = network.output_weights[:, keep_per_layer[-1]]
    return FeedForwardNetwork(new_layers, out_w, network.output_bias)


def lowest_influence_neurons(
    network: FeedForwardNetwork,
    distribution: Sequence[int],
    x: np.ndarray,
) -> list[NeuronAddress]:
    """Per layer, the ``f_l`` neurons whose removal hurts least.

    Influence = mean |output sensitivity x nominal emission| over the
    probe batch — the same first-order damage the adversary maximises
    (:func:`repro.faults.adversary.adversarial_crash_scenario`),
    minimised instead.
    """
    from ..faults.adversary import output_sensitivities

    if len(distribution) != network.depth:
        raise ValueError(
            f"distribution length {len(distribution)} != depth {network.depth}"
        )
    sens = output_sensitivities(network, x)
    hidden = network.hidden_outputs(x)
    picks: list[NeuronAddress] = []
    for l, count in enumerate(distribution, start=1):
        count = int(count)
        if count == 0:
            continue
        if count >= network.layer_sizes[l - 1]:
            raise ValueError(f"cannot prune all of layer {l}")
        damage = (sens[l - 1] * np.abs(hidden[l - 1])).mean(axis=0)
        order = np.argsort(damage)[:count]
        picks.extend(NeuronAddress(l, int(i)) for i in order)
    return picks


def certified_prune(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    x: np.ndarray,
    *,
    distribution: Optional[Sequence[int]] = None,
) -> tuple[FeedForwardNetwork, float]:
    """Prune a *tolerated* distribution of lowest-influence neurons.

    Returns ``(pruned_network, fep_bound)``.  By Theorem 3 the pruned
    network is still an epsilon-approximation of whatever the original
    epsilon'-approximated — no retraining, no re-evaluation needed
    (though callers are encouraged to re-measure; the bound is
    worst-case, the realised loss is usually far smaller).
    """
    from ..core.tolerance import greedy_max_total_failures

    if distribution is None:
        distribution = greedy_max_total_failures(
            network, epsilon, epsilon_prime, mode="crash"
        )
    distribution = tuple(int(f) for f in distribution)
    fep = network_fep(network, distribution, mode="crash")
    if fep > (epsilon - epsilon_prime) + 1e-12:
        raise ValueError(
            f"distribution {distribution} is not tolerated "
            f"(Fep {fep:.6g} > budget {epsilon - epsilon_prime:.6g})"
        )
    victims = lowest_influence_neurons(network, distribution, x)
    if not victims:
        return network.copy(), 0.0
    return prune_neurons(network, victims), fep
