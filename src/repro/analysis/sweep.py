"""Generic parameter sweeps with optional process-level parallelism.

Experiments in this repo are embarrassingly parallel at the grain of
"one configuration" (one K value, one bit-width, one architecture).
``parameter_sweep`` runs a function over a configuration grid either
in-process or over a fork-once process pool: the function ships to
each worker exactly once (pool initializer) and jobs carry only the
configuration dicts, submitted lazily through a bounded in-flight
window — the mpi4py-style scatter/gather pattern of the HPC guide,
realised on a single node.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from ..parallel import bounded_map, default_workers, fork_once_pool, worker_state

__all__ = ["SweepResult", "grid_configurations", "parameter_sweep", "default_workers"]


@dataclass
class SweepResult:
    """Outcome of a sweep: aligned lists of configurations and results."""

    configurations: List[dict] = field(default_factory=list)
    results: List[Any] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(zip(self.configurations, self.results))

    def column(self, key: str) -> list:
        """Extract one configuration key across all runs."""
        return [cfg[key] for cfg in self.configurations]

    def values(self, key: Optional[str] = None) -> list:
        """Result values; ``key`` indexes into dict-valued results."""
        if key is None:
            return list(self.results)
        return [r[key] for r in self.results]

    def as_rows(self) -> list[dict]:
        """Flat row dicts (configuration merged with dict results)."""
        rows = []
        for cfg, res in self:
            row = dict(cfg)
            if isinstance(res, Mapping):
                row.update(res)
            else:
                row["result"] = res
            rows.append(row)
        return rows


def grid_configurations(**axes: Sequence) -> List[dict]:
    """Cartesian product of named axes as a list of config dicts.

    >>> grid_configurations(k=[1, 2], bits=[4, 8])
    [{'k': 1, 'bits': 4}, {'k': 1, 'bits': 8}, {'k': 2, 'bits': 4}, {'k': 2, 'bits': 8}]
    """
    if not axes:
        return [{}]
    names = list(axes)
    combos = itertools.product(*(axes[name] for name in names))
    return [dict(zip(names, combo)) for combo in combos]


def _build_sweep_state(fn):  # pragma: no cover - subprocess body
    """fork_once_pool builder: the swept function ships exactly once."""
    return {"fn": fn}


def _apply_block(cfgs):  # pragma: no cover - subprocess body
    fn = worker_state()["fn"]
    return [fn(**cfg) for cfg in cfgs]


def parameter_sweep(
    fn: Callable[..., Any],
    configurations: Iterable[dict],
    *,
    n_workers: int = 0,
    chunksize: int = 1,
) -> SweepResult:
    """Run ``fn(**cfg)`` for every configuration.

    ``n_workers = 0`` runs serially (deterministic ordering either
    way); ``fn`` and configurations must be picklable for the parallel
    path (module-level functions — not lambdas or closures).  The
    parallel path ships ``fn`` to each worker once, at pool start;
    jobs carry ``chunksize`` configuration dicts each (raise it for
    fine-grained grids to amortise the per-job round-trip).
    """
    configurations = list(configurations)
    result = SweepResult(configurations=configurations)
    if n_workers and n_workers > 1 and len(configurations) > 1:
        step = max(1, int(chunksize))
        blocks = [
            configurations[i : i + step]
            for i in range(0, len(configurations), step)
        ]
        with fork_once_pool(n_workers, _build_sweep_state, (fn,)) as pool:
            result.results = [
                value
                for block in bounded_map(pool, _apply_block, blocks)
                for value in block
            ]
    else:
        result.results = [fn(**cfg) for cfg in configurations]
    return result
