"""Error statistics and shape checks used by the experiment reports.

The reproduction criterion for a theory paper is *shape*, not absolute
numbers: bounds must dominate observations, errors must grow with K at
the predicted polynomial order, trade-off curves must be monotone.
These helpers make those checks explicit and reusable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats as sps

__all__ = [
    "Summary",
    "summarize",
    "bootstrap_ci",
    "loglog_slope",
    "is_monotone",
    "dominance_ratio",
    "coverage_pvalue",
]


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of an error sample."""

    n: int
    mean: float
    std: float
    minimum: float
    maximum: float
    p50: float
    p95: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.4g} std={self.std:.4g} "
            f"min={self.minimum:.4g} p50={self.p50:.4g} p95={self.p95:.4g} "
            f"max={self.maximum:.4g}"
        )


def summarize(values: Sequence[float]) -> Summary:
    """Summary statistics of a sample (empty samples are all-zero)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size == 0:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        n=int(v.size),
        mean=float(v.mean()),
        std=float(v.std()),
        minimum=float(v.min()),
        maximum=float(v.max()),
        p50=float(np.quantile(v, 0.5)),
        p95=float(np.quantile(v, 0.95)),
    )


def bootstrap_ci(
    values: Sequence[float],
    *,
    statistic=np.mean,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Bootstrap confidence interval for a statistic of the sample."""
    v = np.asarray(values, dtype=np.float64)
    if v.size < 2:
        x = float(statistic(v)) if v.size else 0.0
        return (x, x)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, v.size, size=(n_resamples, v.size))
    boot = np.apply_along_axis(statistic, 1, v[idx])
    alpha = (1.0 - confidence) / 2.0
    return (float(np.quantile(boot, alpha)), float(np.quantile(boot, 1 - alpha)))


def loglog_slope(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Least-squares slope (and r-value) of ``log y`` against ``log x``.

    The Figure-3 shape check: for failures at depth ``l`` of an
    ``L``-layer net, the error grows like ``K**(L-l)`` for large K, so
    the log-log slope approaches ``L - l`` (plus the saturation regime
    at small K).  Zero/negative values are dropped (log-undefined).
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    keep = (x > 0) & (y > 0)
    if keep.sum() < 2:
        raise ValueError("need at least two positive (x, y) pairs")
    res = sps.linregress(np.log(x[keep]), np.log(y[keep]))
    return float(res.slope), float(res.rvalue)


def is_monotone(
    values: Sequence[float],
    *,
    increasing: bool = True,
    tolerance: float = 0.0,
) -> bool:
    """Whether a sequence is (weakly) monotone, up to ``tolerance``
    of allowed backsliding per step (noise robustness)."""
    v = np.asarray(values, dtype=np.float64)
    if v.size < 2:
        return True
    diffs = np.diff(v)
    if increasing:
        return bool(np.all(diffs >= -tolerance))
    return bool(np.all(diffs <= tolerance))


def dominance_ratio(bounds: Sequence[float], observations: Sequence[float]) -> float:
    """``max(observed / bound)`` — soundness demands ``<= 1``.

    Pairs with a zero bound require a zero observation (else ``inf``).
    """
    b = np.asarray(bounds, dtype=np.float64)
    o = np.asarray(observations, dtype=np.float64)
    if b.shape != o.shape:
        raise ValueError(f"shape mismatch: {b.shape} vs {o.shape}")
    if b.size == 0:
        return 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(b > 0, o / b, np.where(o > 0, np.inf, 0.0))
    return float(ratios.max())


def coverage_pvalue(covered: int, trials: int, level: float) -> float:
    """One-sided binomial p-value that an interval's empirical coverage
    is consistent with its nominal ``level``.

    ``P[Binomial(trials, level) <= covered]``: small values mean the
    interval covered the truth significantly *less* often than
    promised.  This is the audit gate of the adaptive-sampling test
    tier — a ``1 - delta`` confidence sequence over many seeded
    replications must keep this p-value above the test's significance
    floor (over-coverage is fine; conservative intervals are sound).
    """
    if not 0 <= covered <= trials:
        raise ValueError(f"need 0 <= covered <= trials, got {covered}/{trials}")
    if not 0 < level < 1:
        raise ValueError(f"level must be in (0,1), got {level}")
    return float(sps.binom.cdf(covered, trials, level))
