"""Render experiment results to Markdown reports.

Turns a collection of :class:`repro.experiments.runner.ExperimentResult`
into the kind of document EXPERIMENTS.md is: one section per
experiment, the regenerated table, the shape-check verdicts and the
headline metrics.  Used by ``python -m repro experiments --markdown``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Mapping, Union

from ..experiments.runner import ExperimentResult

__all__ = ["result_to_markdown", "results_to_markdown", "write_markdown_report"]


def _md_table(rows) -> str:
    if not rows:
        return "*(no rows)*"
    keys: list[str] = []
    for row in rows:
        for k in row:
            if k not in keys:
                keys.append(k)

    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.6g}"
        return str(v).replace("|", "\\|")

    header = "| " + " | ".join(keys) + " |"
    sep = "| " + " | ".join("---" for _ in keys) + " |"
    body = "\n".join(
        "| " + " | ".join(fmt(row.get(k, "")) for k in keys) + " |" for row in rows
    )
    return "\n".join([header, sep, body])


def result_to_markdown(result: ExperimentResult) -> str:
    """One experiment as a Markdown section."""
    lines = [
        f"## `{result.experiment_id}`",
        "",
        result.description + ".",
        "",
        _md_table(result.rows),
        "",
    ]
    if result.metrics:
        lines.append(
            "**Metrics:** "
            + ", ".join(f"`{k}` = {v:.6g}" for k, v in sorted(result.metrics.items()))
        )
        lines.append("")
    lines.append("**Shape checks:**")
    lines.append("")
    for name, ok in result.shape_checks.items():
        lines.append(f"- {'✅' if ok else '❌'} {name}")
    if result.notes:
        lines.append("")
        for note in result.notes:
            lines.append(f"> {note}")
    lines.append("")
    return "\n".join(lines)


def results_to_markdown(
    results: "Mapping[str, ExperimentResult] | Iterable[ExperimentResult]",
    *,
    title: str = "Reproduction report — When Neurons Fail (IPDPS 2017)",
) -> str:
    """A full report for a collection of results."""
    if isinstance(results, Mapping):
        ordered = list(results.values())
    else:
        ordered = list(results)
    n_pass = sum(1 for r in ordered if r.passed)
    lines = [
        f"# {title}",
        "",
        f"{n_pass}/{len(ordered)} experiments pass all shape checks.",
        "",
    ]
    for result in ordered:
        lines.append(result_to_markdown(result))
    return "\n".join(lines)


def write_markdown_report(
    results: "Mapping[str, ExperimentResult] | Iterable[ExperimentResult]",
    path: Union[str, Path],
    **kwargs,
) -> Path:
    """Write the report to ``path``; returns the path."""
    path = Path(path)
    path.write_text(results_to_markdown(results, **kwargs), encoding="utf-8")
    return path
