"""Mini-batch training loop producing the over-provisioned networks the
bounds are applied to.

The trainer is deliberately simple (full NumPy, no autograd): it is a
substrate, not a contribution.  It supports the regularisers of
:mod:`repro.training.regularizers` — in particular the Fep regulariser
and max-norm projection that realise the paper's robustness/ease-of-
learning trade-offs — and records the history experiments need
(epochs-to-target, achieved sup error).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .backprop import loss_and_gradients
from .data import TargetFunction, grid_inputs, sup_error
from .losses import Loss, get_loss
from .optimizers import Optimizer, get_optimizer
from .regularizers import Regularizer

__all__ = ["TrainingHistory", "Trainer", "train_to_target"]


@dataclass
class TrainingHistory:
    """Per-epoch records of a training run."""

    losses: list[float] = field(default_factory=list)
    penalties: list[float] = field(default_factory=list)
    sup_errors: list[float] = field(default_factory=list)
    epochs_run: int = 0
    converged: bool = False
    #: Epoch at which the sup-error target was first met (or None).
    epochs_to_target: Optional[int] = None

    @property
    def final_loss(self) -> float:
        return self.losses[-1] if self.losses else float("nan")

    @property
    def final_sup_error(self) -> float:
        return self.sup_errors[-1] if self.sup_errors else float("nan")


class Trainer:
    """Mini-batch gradient trainer.

    Parameters
    ----------
    loss, optimizer:
        Specs or instances (see ``get_loss`` / ``get_optimizer``).
    regularizers:
        Applied additively to loss gradients; their ``project`` hooks
        run after every optimizer step.
    """

    def __init__(
        self,
        loss: "str | Loss" = "mse",
        optimizer: "str | Optimizer" = "adam",
        regularizers: Sequence[Regularizer] = (),
    ):
        self.loss = get_loss(loss)
        self.optimizer = get_optimizer(optimizer)
        self.regularizers = list(regularizers)

    def train(
        self,
        network: FeedForwardNetwork,
        X: np.ndarray,
        y: np.ndarray,
        *,
        epochs: int = 200,
        batch_size: int = 32,
        rng: Optional[np.random.Generator] = None,
        target: Optional[TargetFunction] = None,
        target_sup_error: Optional[float] = None,
        eval_every: int = 10,
        eval_points_per_dim: int = 15,
        callback: Optional[Callable[[int, float], None]] = None,
    ) -> TrainingHistory:
        """Train in place; returns the history.

        When ``target`` is given, the sup error over a grid is tracked
        every ``eval_every`` epochs, and training stops early once it
        drops below ``target_sup_error`` (that epoch is recorded as
        ``epochs_to_target`` — the "learning cost" of the Section V-C
        trade-off experiments).
        """
        X = np.asarray(X, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if y.ndim == 1:
            y = y[:, None]
        if X.shape[0] != y.shape[0]:
            raise ValueError(f"X has {X.shape[0]} rows but y has {y.shape[0]}")
        if epochs <= 0 or batch_size <= 0:
            raise ValueError("epochs and batch_size must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        n = X.shape[0]
        history = TrainingHistory()
        eval_grid = (
            grid_inputs(target.dim, eval_points_per_dim) if target is not None else None
        )

        for epoch in range(1, epochs + 1):
            order = rng.permutation(n)
            epoch_loss = 0.0
            n_batches = 0
            for start in range(0, n, batch_size):
                idx = order[start : start + batch_size]
                value, grads = loss_and_gradients(network, X[idx], y[idx], self.loss)
                for reg in self.regularizers:
                    for key, g in reg.gradients(network).items():
                        if key in grads:
                            grads[key] = grads[key] + g
                        else:
                            grads[key] = g
                self.optimizer.step(network.parameters(), grads)
                for reg in self.regularizers:
                    reg.project(network)
                epoch_loss += value
                n_batches += 1
            epoch_loss /= max(1, n_batches)
            history.losses.append(epoch_loss)
            history.penalties.append(
                float(sum(reg.penalty(network) for reg in self.regularizers))
            )
            history.epochs_run = epoch
            if callback is not None:
                callback(epoch, epoch_loss)

            if target is not None and (epoch % eval_every == 0 or epoch == epochs):
                err = sup_error(network, target, eval_grid)
                history.sup_errors.append(err)
                if (
                    target_sup_error is not None
                    and err <= target_sup_error
                    and history.epochs_to_target is None
                ):
                    history.epochs_to_target = epoch
                    history.converged = True
                    break
        return history


def train_to_target(
    network: FeedForwardNetwork,
    target: TargetFunction,
    *,
    n_samples: int = 2048,
    epochs: int = 300,
    batch_size: int = 64,
    optimizer: "str | Optimizer" = "adam",
    regularizers: Sequence[Regularizer] = (),
    target_sup_error: Optional[float] = None,
    seed: int = 0,
) -> TrainingHistory:
    """Convenience wrapper: sample a dataset from ``target`` and train.

    Produces the epsilon'-approximations the experiments inject faults
    into.  Returns the history; the network is trained in place.
    """
    from .data import sample_dataset

    rng = np.random.default_rng(seed)
    X, y = sample_dataset(target, n_samples, rng=rng)
    trainer = Trainer(optimizer=optimizer, regularizers=regularizers)
    return trainer.train(
        network,
        X,
        y,
        epochs=epochs,
        batch_size=batch_size,
        rng=rng,
        target=target,
        target_sup_error=target_sup_error,
    )
