"""Backpropagation for :class:`FeedForwardNetwork` (dense and conv).

The paper assumes networks arrive pre-trained ("the weights are
determined by the initial learning phase"); this module is the
substrate that produces them.  Gradients are computed analytically for
both layer types and validated against finite differences in the test
suite.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..network.layers import Conv1DLayer, DenseLayer, Layer
from ..network.model import FeedForwardNetwork
from .losses import Loss

__all__ = ["forward_trace", "backward", "loss_and_gradients", "numerical_gradients"]


def forward_trace(
    network: FeedForwardNetwork, x: np.ndarray
) -> tuple[np.ndarray, List[np.ndarray], List[np.ndarray]]:
    """Forward pass keeping per-layer inputs and pre-activations.

    Returns ``(output, inputs, pre_activations)`` where ``inputs[l0]``
    is what layer ``l0`` consumed and ``pre_activations[l0]`` its sums.
    """
    xb, _ = network._as_batch(x)
    inputs: List[np.ndarray] = []
    pres: List[np.ndarray] = []
    y = xb
    for layer in network.layers:
        inputs.append(y)
        s = layer.pre_activation(y)
        pres.append(s)
        y = layer.activation(s)
    out = network.readout(y)
    inputs.append(y)  # what the output node consumed
    return out, inputs, pres


def _layer_backward(
    layer: Layer,
    x_in: np.ndarray,
    pre: np.ndarray,
    delta_y: np.ndarray,
) -> tuple[Dict[str, np.ndarray], np.ndarray]:
    """Gradients of one layer and the delta for its input.

    ``delta_y = dLoss/dy`` for this layer's outputs, shape ``(B, n_out)``.
    """
    delta_s = delta_y * layer.activation.derivative(pre)
    if isinstance(layer, DenseLayer):
        grads: Dict[str, np.ndarray] = {"weights": delta_s.T @ x_in}
        if layer.use_bias:
            grads["bias"] = delta_s.sum(axis=0)
        delta_x = delta_s @ layer.weights
        return grads, delta_x
    if isinstance(layer, Conv1DLayer):
        R = layer.receptive_field
        windows = np.lib.stride_tricks.sliding_window_view(x_in, R, axis=1)
        grads = {"kernel": np.einsum("bp,bpr->r", delta_s, windows)}
        if layer.use_bias:
            grads["bias"] = np.array([delta_s.sum()])
        delta_x = np.zeros_like(x_in)
        for r in range(R):
            delta_x[:, r : r + layer.n_out] += delta_s * layer.kernel[r]
        return grads, delta_x
    raise TypeError(f"no backward rule for layer type {type(layer).__name__}")


def backward(
    network: FeedForwardNetwork,
    inputs: List[np.ndarray],
    pres: List[np.ndarray],
    delta_out: np.ndarray,
) -> Dict[str, np.ndarray]:
    """Backpropagate ``dLoss/d output`` through the whole network.

    Returns gradients keyed exactly like
    :meth:`FeedForwardNetwork.parameters`.
    """
    grads: Dict[str, np.ndarray] = {
        "output.weights": delta_out.T @ inputs[-1],
        "output.bias": delta_out.sum(axis=0),
    }
    delta = delta_out @ network.output_weights  # dLoss/dy^(L)
    for l0 in range(network.depth - 1, -1, -1):
        layer = network.layers[l0]
        layer_grads, delta = _layer_backward(layer, inputs[l0], pres[l0], delta)
        for name, g in layer_grads.items():
            grads[f"layer{l0 + 1}.{name}"] = g
    return grads


def loss_and_gradients(
    network: FeedForwardNetwork,
    x: np.ndarray,
    target: np.ndarray,
    loss: Loss,
) -> tuple[float, Dict[str, np.ndarray]]:
    """One forward+backward pass: loss value and all parameter gradients."""
    out, inputs, pres = forward_trace(network, x)
    value = loss.value(out, target)
    delta_out = loss.gradient(out, target)
    if delta_out.ndim == 1:
        delta_out = delta_out[:, None]
    return value, backward(network, inputs, pres, delta_out)


def numerical_gradients(
    network: FeedForwardNetwork,
    x: np.ndarray,
    target: np.ndarray,
    loss: Loss,
    *,
    eps: float = 1e-6,
) -> Dict[str, np.ndarray]:
    """Central finite-difference gradients (test oracle; O(P) passes)."""
    grads: Dict[str, np.ndarray] = {}
    for name, p in network.parameters().items():
        g = np.zeros_like(p)
        flat = p.reshape(-1)
        gflat = g.reshape(-1)
        for idx in range(flat.size):
            orig = flat[idx]
            flat[idx] = orig + eps
            up = loss.value(network.forward(x), target)
            flat[idx] = orig - eps
            down = loss.value(network.forward(x), target)
            flat[idx] = orig
            gflat[idx] = (up - down) / (2 * eps)
        grads[name] = g
    return grads
