"""First-order optimizers operating on named parameter dictionaries.

Parameters are NumPy arrays mutated *in place* (they are views into the
network's layers), following the in-place-update idiom of the
optimisation guide: no reallocations in the training hot loop.
"""

from __future__ import annotations

from typing import Dict, Mapping, Type

import numpy as np

__all__ = ["Optimizer", "SGD", "Adam", "RMSProp", "get_optimizer"]


class Optimizer:
    """Base class keeping per-parameter state keyed by name."""

    name = "optimizer"

    def __init__(self, lr: float = 0.1):
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self._state: Dict[str, dict] = {}

    def _slot(self, key: str) -> dict:
        return self._state.setdefault(key, {})

    def step(
        self,
        params: Mapping[str, np.ndarray],
        grads: Mapping[str, np.ndarray],
    ) -> None:
        """Update every parameter in place from its gradient."""
        for key, p in params.items():
            g = grads.get(key)
            if g is None:
                continue
            g = np.asarray(g, dtype=np.float64)
            if g.shape != p.shape:
                raise ValueError(
                    f"gradient shape {g.shape} != parameter shape {p.shape} "
                    f"for {key!r}"
                )
            self._update(key, p, g)

    def _update(self, key: str, p: np.ndarray, g: np.ndarray) -> None:
        raise NotImplementedError

    def reset(self) -> None:
        """Drop all accumulated state (momenta, moments)."""
        self._state.clear()


class SGD(Optimizer):
    """Stochastic gradient descent with optional (Nesterov) momentum."""

    name = "sgd"

    def __init__(self, lr: float = 0.5, momentum: float = 0.0, nesterov: bool = False):
        super().__init__(lr)
        if not 0 <= momentum < 1:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = float(momentum)
        self.nesterov = bool(nesterov)

    def _update(self, key, p, g):
        if self.momentum == 0.0:
            p -= self.lr * g
            return
        slot = self._slot(key)
        v = slot.get("v")
        if v is None:
            v = slot["v"] = np.zeros_like(p)
        v *= self.momentum
        v -= self.lr * g
        if self.nesterov:
            p += self.momentum * v - self.lr * g
        else:
            p += v


class Adam(Optimizer):
    """Adam (Kingma & Ba) with bias correction."""

    name = "adam"

    def __init__(
        self,
        lr: float = 0.01,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
    ):
        super().__init__(lr)
        if not 0 <= beta1 < 1 or not 0 <= beta2 < 1:
            raise ValueError(f"betas must be in [0, 1), got {beta1}, {beta2}")
        self.beta1, self.beta2, self.eps = float(beta1), float(beta2), float(eps)

    def _update(self, key, p, g):
        slot = self._slot(key)
        if "m" not in slot:
            slot["m"] = np.zeros_like(p)
            slot["v"] = np.zeros_like(p)
            slot["t"] = 0
        slot["t"] += 1
        m, v, t = slot["m"], slot["v"], slot["t"]
        m *= self.beta1
        m += (1 - self.beta1) * g
        v *= self.beta2
        v += (1 - self.beta2) * g * g
        m_hat = m / (1 - self.beta1**t)
        v_hat = v / (1 - self.beta2**t)
        p -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class RMSProp(Optimizer):
    """RMSProp with exponential moving average of squared gradients."""

    name = "rmsprop"

    def __init__(self, lr: float = 0.01, rho: float = 0.9, eps: float = 1e-8):
        super().__init__(lr)
        if not 0 <= rho < 1:
            raise ValueError(f"rho must be in [0, 1), got {rho}")
        self.rho, self.eps = float(rho), float(eps)

    def _update(self, key, p, g):
        slot = self._slot(key)
        if "s" not in slot:
            slot["s"] = np.zeros_like(p)
        s = slot["s"]
        s *= self.rho
        s += (1 - self.rho) * g * g
        p -= self.lr * g / (np.sqrt(s) + self.eps)


_REGISTRY: Dict[str, Type[Optimizer]] = {
    "sgd": SGD,
    "adam": Adam,
    "rmsprop": RMSProp,
}


def get_optimizer(spec: "str | Optimizer", **kwargs) -> Optimizer:
    """Instantiate an optimizer from its name, or pass an instance through."""
    if isinstance(spec, Optimizer):
        return spec
    try:
        return _REGISTRY[spec](**kwargs)
    except KeyError:
        raise KeyError(
            f"unknown optimizer {spec!r}; available: {sorted(_REGISTRY)}"
        ) from None
