"""Regularisers, including the paper's future-work Fep regulariser.

Section V-C frames robustness as *minimising Fep during learning*; the
concluding remarks call a learning scheme "taking the forward error
propagation as an additional minimization target" an appealing research
direction (one prior attempt, [36], handles a single crash only).  We
implement it:

* :class:`L2Regularizer` — classic weight decay; shrinks *all* weights
  and therefore each ``w_m^(l)``;
* :class:`MaxNormConstraint` — projects weights onto ``|w| <= c`` after
  every step; *directly* caps ``w_m^(l)``, making the weight trade-off
  of Section V-C a single knob;
* :class:`FepRegularizer` — adds ``lam * Fep(f_target)`` to the loss,
  with (sub)gradients routed to the max-magnitude weight of each stage
  (the argmax subgradient of ``w -> max|w|``).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..core.fep import forward_error_propagation
from ..network.layers import Conv1DLayer, DenseLayer
from ..network.model import FeedForwardNetwork

__all__ = ["Regularizer", "L2Regularizer", "MaxNormConstraint", "FepRegularizer"]


class Regularizer:
    """Base class: a penalty and its parameter gradients, plus an
    optional post-step projection."""

    def penalty(self, network: FeedForwardNetwork) -> float:
        return 0.0

    def gradients(self, network: FeedForwardNetwork) -> Dict[str, np.ndarray]:
        """Gradients of :meth:`penalty`, keyed like ``network.parameters()``."""
        return {}

    def project(self, network: FeedForwardNetwork) -> None:
        """In-place constraint applied after each optimizer step."""


class L2Regularizer(Regularizer):
    """Weight decay ``lam * sum w^2`` over synaptic weights (not biases)."""

    def __init__(self, lam: float = 1e-3):
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        self.lam = float(lam)

    def _weight_keys(self, network: FeedForwardNetwork) -> list[str]:
        keys = []
        for name in network.parameters():
            if name.endswith(".weights") or name.endswith(".kernel"):
                keys.append(name)
        return keys

    def penalty(self, network):
        params = network.parameters()
        return self.lam * float(
            sum(np.sum(params[k] ** 2) for k in self._weight_keys(network))
        )

    def gradients(self, network):
        params = network.parameters()
        return {k: 2.0 * self.lam * params[k] for k in self._weight_keys(network)}


class MaxNormConstraint(Regularizer):
    """Hard cap ``|w| <= max_abs`` on synaptic weights.

    After projection, every capped ``w_m^(l) <= max_abs``, so Theorem
    3's condition can be *designed for* rather than hoped for.

    Parameters
    ----------
    max_abs:
        The cap.
    stages:
        Which synapse stages to cap (1-based; stage ``l`` feeds layer
        ``l``, stage ``L+1`` feeds the output node).  ``None`` caps
        everything.  Capping only stages >= 2 is the Fep-aware choice:
        ``w_m^(1)`` never enters the neuron-failure bound (errors
        originate at neuron *outputs*), so the input features can stay
        expressive while the propagation-relevant weights shrink.
    include_bias:
        Also cap biases (off by default; biases model the constant
        neuron and do not enter the bounds).
    """

    def __init__(
        self,
        max_abs: float = 1.0,
        include_bias: bool = False,
        stages: "Sequence[int] | None" = None,
    ):
        if max_abs <= 0:
            raise ValueError(f"max_abs must be positive, got {max_abs}")
        self.max_abs = float(max_abs)
        self.include_bias = bool(include_bias)
        self.stages = None if stages is None else {int(s) for s in stages}

    def _stage_of(self, name: str, network: FeedForwardNetwork) -> Optional[int]:
        if name.startswith("output."):
            return network.depth + 1
        if name.startswith("layer"):
            return int(name.split(".")[0][len("layer"):])
        return None  # pragma: no cover - no other key shapes exist

    def project(self, network):
        for name, p in network.parameters().items():
            is_weight = name.endswith(".weights") or name.endswith(".kernel")
            is_bias = name.endswith(".bias")
            if not (is_weight or (self.include_bias and is_bias)):
                continue
            if self.stages is not None:
                stage = self._stage_of(name, network)
                if stage not in self.stages:
                    continue
            np.clip(p, -self.max_abs, self.max_abs, out=p)


class FepRegularizer(Regularizer):
    """Penalise ``lam * Fep(f_target)`` — learn robustness directly.

    ``Fep`` depends on the weights only through the per-stage maxima
    ``w_m^(2..L+1)``; the penalty's subgradient w.r.t. each stage's
    weights is ``dFep/dw_m`` concentrated on the entry attaining the
    maximum (ties broken arbitrarily at the first argmax — a valid
    subgradient of the max function).

    Parameters
    ----------
    target_distribution:
        The ``(f_l)`` the user wants tolerated; Fep is evaluated there.
    lam:
        Penalty strength.
    capacity:
        ``C`` for the Fep evaluation (default 1 = crash mode with a
        [0,1] squasher).
    """

    def __init__(
        self,
        target_distribution: Sequence[int],
        lam: float = 1e-2,
        capacity: float = 1.0,
    ):
        if lam < 0:
            raise ValueError(f"lam must be >= 0, got {lam}")
        self.target = tuple(int(f) for f in target_distribution)
        self.lam = float(lam)
        self.capacity = float(capacity)

    def _fep(self, network: FeedForwardNetwork, weight_maxes: np.ndarray) -> float:
        return forward_error_propagation(
            self.target,
            network.layer_sizes,
            weight_maxes,
            network.lipschitz_constant,
            self.capacity,
        )

    def penalty(self, network):
        if len(self.target) != network.depth:
            raise ValueError(
                f"target distribution length {len(self.target)} != depth "
                f"{network.depth}"
            )
        return self.lam * self._fep(network, np.asarray(network.weight_maxes()))

    def gradients(self, network):
        if len(self.target) != network.depth:
            raise ValueError(
                f"target distribution length {len(self.target)} != depth "
                f"{network.depth}"
            )
        w = np.asarray(network.weight_maxes(), dtype=np.float64)
        base = self._fep(network, w)
        grads: Dict[str, np.ndarray] = {}
        # dFep/dw_m^(stage) by forward differences on the scalar formula
        # (L+1 cheap evaluations), then routed to the argmax weight.
        eps = 1e-7
        for stage in range(2, network.depth + 2):  # w_m^(1) never enters
            w_pert = w.copy()
            w_pert[stage - 1] += eps
            d = (self._fep(network, w_pert) - base) / eps
            if d == 0.0:
                continue
            if stage == network.depth + 1:
                key = "output.weights"
                arr = network.output_weights
            else:
                layer = network.layers[stage - 1]
                if isinstance(layer, DenseLayer):
                    key, arr = f"layer{stage}.weights", layer.weights
                elif isinstance(layer, Conv1DLayer):
                    key, arr = f"layer{stage}.kernel", layer.kernel
                else:  # pragma: no cover - no other layer types exist
                    continue
            g = grads.setdefault(key, np.zeros_like(arr))
            flat_idx = int(np.argmax(np.abs(arr)))
            sign = np.sign(arr.reshape(-1)[flat_idx]) or 1.0
            g.reshape(-1)[flat_idx] += self.lam * d * sign
        return grads
