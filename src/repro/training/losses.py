"""Loss functions for the from-scratch trainer.

Each loss exposes ``value`` and ``gradient`` (w.r.t. predictions,
*averaged* over the batch — so optimizer step sizes are batch-size
independent).
"""

from __future__ import annotations

from typing import Dict, Type

import numpy as np

__all__ = ["Loss", "MSELoss", "MAELoss", "HuberLoss", "get_loss"]


class Loss:
    """Base class; predictions/targets are ``(B, n_outputs)`` arrays."""

    name = "loss"

    @staticmethod
    def _check(pred: np.ndarray, target: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        pred = np.asarray(pred, dtype=np.float64)
        target = np.asarray(target, dtype=np.float64)
        if target.ndim == 1:
            target = target[:, None]
        if pred.ndim == 1:
            pred = pred[:, None]
        if pred.shape != target.shape:
            raise ValueError(f"shape mismatch: pred {pred.shape} vs target {target.shape}")
        return pred, target

    def value(self, pred: np.ndarray, target: np.ndarray) -> float:
        raise NotImplementedError

    def gradient(self, pred: np.ndarray, target: np.ndarray) -> np.ndarray:
        """``d value / d pred`` — same shape as ``pred``."""
        raise NotImplementedError


class MSELoss(Loss):
    """Mean squared error ``mean((pred - target)^2)``."""

    name = "mse"

    def value(self, pred, target):
        pred, target = self._check(pred, target)
        return float(np.mean((pred - target) ** 2))

    def gradient(self, pred, target):
        pred, target = self._check(pred, target)
        return 2.0 * (pred - target) / pred.size


class MAELoss(Loss):
    """Mean absolute error (subgradient 0 at exact zeros)."""

    name = "mae"

    def value(self, pred, target):
        pred, target = self._check(pred, target)
        return float(np.mean(np.abs(pred - target)))

    def gradient(self, pred, target):
        pred, target = self._check(pred, target)
        return np.sign(pred - target) / pred.size


class HuberLoss(Loss):
    """Huber loss with transition point ``delta``."""

    name = "huber"

    def __init__(self, delta: float = 1.0):
        if delta <= 0:
            raise ValueError(f"delta must be positive, got {delta}")
        self.delta = float(delta)

    def value(self, pred, target):
        pred, target = self._check(pred, target)
        r = pred - target
        quad = 0.5 * r**2
        lin = self.delta * (np.abs(r) - 0.5 * self.delta)
        return float(np.mean(np.where(np.abs(r) <= self.delta, quad, lin)))

    def gradient(self, pred, target):
        pred, target = self._check(pred, target)
        r = pred - target
        g = np.where(np.abs(r) <= self.delta, r, self.delta * np.sign(r))
        return g / pred.size


_REGISTRY: Dict[str, Type[Loss]] = {
    "mse": MSELoss,
    "mae": MAELoss,
    "huber": HuberLoss,
}


def get_loss(spec: "str | Loss") -> Loss:
    """Instantiate a loss from its name, or pass an instance through."""
    if isinstance(spec, Loss):
        return spec
    try:
        return _REGISTRY[spec]()
    except KeyError:
        raise KeyError(f"unknown loss {spec!r}; available: {sorted(_REGISTRY)}") from None
