"""Learning substrate: losses, optimizers, backprop, regularisers
(including the paper's Fep-minimising scheme), synthetic targets and
the training loop.
"""

from .backprop import (
    backward,
    forward_trace,
    loss_and_gradients,
    numerical_gradients,
)
from .data import (
    TargetFunction,
    available_targets,
    gaussian_bump,
    get_target,
    grid_inputs,
    polynomial_bowl,
    radial_wave,
    sample_dataset,
    sine_ridge,
    smooth_xor,
    sup_error,
)
from .losses import HuberLoss, Loss, MAELoss, MSELoss, get_loss
from .optimizers import SGD, Adam, Optimizer, RMSProp, get_optimizer
from .regularizers import (
    FepRegularizer,
    L2Regularizer,
    MaxNormConstraint,
    Regularizer,
)
from .trainer import Trainer, TrainingHistory, train_to_target

__all__ = [
    "Loss",
    "MSELoss",
    "MAELoss",
    "HuberLoss",
    "get_loss",
    "Optimizer",
    "SGD",
    "Adam",
    "RMSProp",
    "get_optimizer",
    "forward_trace",
    "backward",
    "loss_and_gradients",
    "numerical_gradients",
    "Regularizer",
    "L2Regularizer",
    "MaxNormConstraint",
    "FepRegularizer",
    "TargetFunction",
    "gaussian_bump",
    "sine_ridge",
    "polynomial_bowl",
    "smooth_xor",
    "radial_wave",
    "get_target",
    "available_targets",
    "sample_dataset",
    "grid_inputs",
    "sup_error",
    "Trainer",
    "TrainingHistory",
    "train_to_target",
]
