"""Synthetic targets in ``A = C([0,1]^d, [0,1])`` and dataset utilities.

The paper's computation model approximates continuous functions from
the unit cube to the unit interval; these are concrete members of that
space used to *train* the over-provisioned approximations the bounds
are then applied to.  Each target knows its own Lipschitz-ish scale so
tests can reason about achievable approximation quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

from ..network.model import FeedForwardNetwork

__all__ = [
    "TargetFunction",
    "gaussian_bump",
    "sine_ridge",
    "polynomial_bowl",
    "smooth_xor",
    "radial_wave",
    "get_target",
    "available_targets",
    "sample_dataset",
    "grid_inputs",
    "sup_error",
]


@dataclass(frozen=True)
class TargetFunction:
    """A named continuous target ``F: [0,1]^d -> [0,1]``."""

    name: str
    dim: int
    fn: Callable[[np.ndarray], np.ndarray]

    def __call__(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        squeeze = x.ndim == 1
        if squeeze:
            x = x[None, :]
        if x.shape[1] != self.dim:
            raise ValueError(f"target {self.name!r} expects d={self.dim}, got {x.shape[1]}")
        out = np.asarray(self.fn(x), dtype=np.float64).reshape(x.shape[0])
        return out[0] if squeeze else out


def gaussian_bump(dim: int = 2, center: float = 0.5, width: float = 0.15) -> TargetFunction:
    """A smooth bump ``exp(-|x - c|^2 / (2 width^2))`` in the cube."""
    if width <= 0:
        raise ValueError(f"width must be positive, got {width}")

    def fn(x):
        r2 = np.sum((x - center) ** 2, axis=1)
        return np.exp(-r2 / (2.0 * width**2))

    return TargetFunction(f"gaussian_bump_d{dim}", dim, fn)


def sine_ridge(dim: int = 2, frequency: float = 1.5) -> TargetFunction:
    """``(1 + sin(2 pi f mean(x))) / 2`` — a ridge along the diagonal."""

    def fn(x):
        return 0.5 * (1.0 + np.sin(2.0 * np.pi * frequency * x.mean(axis=1)))

    return TargetFunction(f"sine_ridge_d{dim}", dim, fn)


def polynomial_bowl(dim: int = 2) -> TargetFunction:
    """``mean(4 (x - 1/2)^2)`` — a quadratic bowl, range [0, 1]."""

    def fn(x):
        return np.mean(4.0 * (x - 0.5) ** 2, axis=1)

    return TargetFunction(f"polynomial_bowl_d{dim}", dim, fn)


def smooth_xor(steepness: float = 8.0) -> TargetFunction:
    """A smooth 2-D XOR — the non-linearly-separable classic
    (Minsky's objection to perceptrons, paper's introduction)."""

    def fn(x):
        a = np.tanh(steepness * (x[:, 0] - 0.5))
        b = np.tanh(steepness * (x[:, 1] - 0.5))
        return 0.5 * (1.0 - a * b)

    return TargetFunction("smooth_xor", 2, fn)


def radial_wave(dim: int = 3, frequency: float = 2.0) -> TargetFunction:
    """``(1 + cos(2 pi f |x - 1/2|)) / 2`` — concentric waves."""

    def fn(x):
        r = np.sqrt(np.sum((x - 0.5) ** 2, axis=1))
        return 0.5 * (1.0 + np.cos(2.0 * np.pi * frequency * r))

    return TargetFunction(f"radial_wave_d{dim}", dim, fn)


_FACTORIES: Dict[str, Callable[..., TargetFunction]] = {
    "gaussian_bump": gaussian_bump,
    "sine_ridge": sine_ridge,
    "polynomial_bowl": polynomial_bowl,
    "smooth_xor": smooth_xor,
    "radial_wave": radial_wave,
}


def available_targets() -> list[str]:
    return sorted(_FACTORIES)


def get_target(name: str, **kwargs) -> TargetFunction:
    """Build a named target function."""
    try:
        return _FACTORIES[name](**kwargs)
    except KeyError:
        raise KeyError(f"unknown target {name!r}; available: {available_targets()}") from None


# ---------------------------------------------------------------------------
# Datasets
# ---------------------------------------------------------------------------


def sample_dataset(
    target: TargetFunction,
    n: int,
    *,
    rng: Optional[np.random.Generator] = None,
    noise: float = 0.0,
) -> tuple[np.ndarray, np.ndarray]:
    """Uniformly-sampled ``(X, y)`` pairs from the cube.

    ``noise`` adds Gaussian observation noise to the labels (the
    learning dataset is "a finite number of the values of the target
    function" — optionally imperfect).
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    rng = rng if rng is not None else np.random.default_rng()
    X = rng.random((n, target.dim))
    y = target(X)
    if noise > 0:
        y = y + rng.normal(0.0, noise, size=y.shape)
    return X, y[:, None]


def grid_inputs(dim: int, points_per_dim: int = 20) -> np.ndarray:
    """A regular grid over ``[0,1]^d`` (dense sup-error evaluation)."""
    if dim <= 0 or points_per_dim <= 1:
        raise ValueError("dim must be >= 1 and points_per_dim >= 2")
    axes = [np.linspace(0.0, 1.0, points_per_dim)] * dim
    mesh = np.meshgrid(*axes, indexing="ij")
    return np.stack([m.ravel() for m in mesh], axis=1)


def sup_error(
    network: FeedForwardNetwork,
    target: TargetFunction,
    inputs: Optional[np.ndarray] = None,
    *,
    points_per_dim: int = 20,
) -> float:
    """Empirical ``sup_X |F(X) - Fneu(X)|`` over a grid (the epsilon'
    actually achieved by a trained approximation)."""
    if inputs is None:
        inputs = grid_inputs(target.dim, points_per_dim)
    pred = network.forward(inputs)[:, 0]
    return float(np.max(np.abs(pred - target(inputs))))
