"""Per-phase wall-time accounting for campaign runs.

The campaign pipeline has five cost centres — scenario **sampling**,
mask/stage **compile** work (slicing, segment-plan builds), the dense
**gemm** path (matmul + bias + activation), the fault **corrections**
(mask channels and synapse scatter), and the error **reduction**.  A
:class:`PhaseProfile` attached to a :class:`~repro.faults.masks.
MaskCampaignEngine` (``engine.profile``) accumulates wall time into
those buckets as chunks stream through; the campaign CLI's
``--profile`` flag prints the resulting table so a future slow path is
diagnosable without external profilers.

Profiling works across the fan-out paths too: each fork-once worker
charges a private per-block profile and ships its seconds home with
the block result; the parent folds them with :meth:`PhaseProfile.
add_dict` in block submission order, so ``--profile --workers N``
reports the whole run's phase costs (summed across workers, hence
exceeding wall time under real parallelism) instead of refusing.
"""

from __future__ import annotations

import time
from typing import Dict, List, Mapping, Tuple

__all__ = ["PHASES", "PhaseProfile"]

#: The fixed cost centres, in pipeline order.
PHASES: Tuple[str, ...] = (
    "sampling", "compile", "gemm", "corrections", "reduction"
)


class PhaseProfile:
    """Accumulates per-phase wall time (seconds) across a campaign.

    One instance spans a whole run — chunk loops call :meth:`add`
    repeatedly and the buckets sum.  ``scenarios`` counts evaluated
    scenarios so :meth:`report` can show end-to-end throughput.
    """

    __slots__ = ("seconds", "scenarios")

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = {p: 0.0 for p in PHASES}
        self.scenarios: int = 0

    def add(self, phase: str, dt: float) -> None:
        if phase not in self.seconds:
            raise ValueError(f"unknown phase {phase!r} (expected {PHASES})")
        self.seconds[phase] += dt

    def timer(self):
        """A tick closure: ``tick(phase)`` charges the time since the
        previous tick (or since creation) to ``phase``."""
        last = time.perf_counter()

        def tick(phase: str) -> None:
            nonlocal last
            now = time.perf_counter()
            self.add(phase, now - last)
            last = now

        return tick

    def add_dict(self, payload: Mapping) -> None:
        """Fold an :meth:`as_dict` payload in — the worker-merge path.

        Called in block submission order by the fan-out loops, so the
        folded totals are deterministic for a fixed block layout (the
        per-phase values themselves are wall-time measurements).
        """
        for phase in PHASES:
            if phase in payload:
                self.add(phase, float(payload[phase]))
        self.scenarios += int(payload.get("scenarios", 0))

    @property
    def total(self) -> float:
        return sum(self.seconds.values())

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly payload: per-phase seconds plus totals."""
        out = {p: self.seconds[p] for p in PHASES}
        out["total"] = self.total
        out["scenarios"] = self.scenarios
        return out

    def rows(self) -> List[Tuple[str, float, float]]:
        """``(phase, seconds, share)`` rows in pipeline order."""
        total = self.total
        return [
            (p, self.seconds[p], self.seconds[p] / total if total else 0.0)
            for p in PHASES
        ]

    def report(self) -> str:
        """The ``--profile`` table: per-phase wall time and shares."""
        lines = ["phase        seconds   share"]
        for phase, seconds, share in self.rows():
            lines.append(f"{phase:<12} {seconds:>8.4f}  {share:>5.1%}")
        lines.append(f"{'total':<12} {self.total:>8.4f}")
        if self.scenarios and self.total > 0:
            lines.append(
                f"throughput   {self.scenarios / self.total:>,.0f} scenarios/s"
            )
        return "\n".join(lines)
