"""Robustness certification: package the paper's bounds as a certificate.

``certify(network, epsilon, epsilon_prime, ...)`` computes, once, every
structural quantity the theorems need and returns a
:class:`RobustnessCertificate` that answers tolerance queries in O(L)
— the paper's headline practical point: certification reads the
topology, while the empirical alternative enumerates inputs x failure
configurations.

The certificate can be *audited* against reality with
:func:`empirical_audit`, which runs an injection campaign and verifies
that no certified distribution ever produced an output error beyond
the budget (soundness), and reports how close the worst observed error
came to the bound (tightness).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .bounds import BoundCheck, check_theorem3
from .fep import network_fep
from .tolerance import (
    greedy_max_total_failures,
    max_failures_single_layer,
    max_uniform_fraction,
)

__all__ = ["RobustnessCertificate", "certify", "AuditReport", "empirical_audit"]


@dataclass(frozen=True)
class RobustnessCertificate:
    """A certified summary of a network's failure tolerance.

    All quantities follow Theorem 3 with the stated mode and capacity.
    """

    layer_sizes: tuple[int, ...]
    weight_maxes: tuple[float, ...]
    lipschitz: float
    epsilon: float
    epsilon_prime: float
    mode: str
    capacity: Optional[float]
    #: Largest f_l per layer with other layers healthy.
    per_layer_max: tuple[int, ...]
    #: Largest uniform failure fraction.
    uniform_fraction: float
    #: A maximal simultaneous distribution (greedy).
    maximal_distribution: tuple[int, ...]
    #: The network the certificate was issued for (not hashed).
    network: FeedForwardNetwork = field(repr=False, compare=False)

    @property
    def budget(self) -> float:
        return self.epsilon - self.epsilon_prime

    def tolerates(self, failures: Sequence[int]) -> BoundCheck:
        """Theorem-3 check of an arbitrary distribution."""
        return check_theorem3(
            self.network,
            failures,
            self.epsilon,
            self.epsilon_prime,
            capacity=self.capacity,
            mode=self.mode,
        )

    def fep(self, failures: Sequence[int]) -> float:
        return network_fep(
            self.network, failures, capacity=self.capacity, mode=self.mode
        )

    def summary(self) -> str:
        lines = [
            f"RobustnessCertificate(mode={self.mode}, eps={self.epsilon:g}, "
            f"eps'={self.epsilon_prime:g}, budget={self.budget:g})",
            f"  topology N={self.layer_sizes}, K={self.lipschitz:g}, "
            f"w_m={tuple(round(w, 4) for w in self.weight_maxes)}",
            f"  per-layer max failures: {self.per_layer_max}",
            f"  max uniform failure fraction: {self.uniform_fraction:.3f}",
            f"  a maximal simultaneous distribution: {self.maximal_distribution}",
        ]
        return "\n".join(lines)


def certify(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    *,
    mode: str = "crash",
    capacity: Optional[float] = None,
) -> RobustnessCertificate:
    """Issue a :class:`RobustnessCertificate` for ``network``.

    ``mode="crash"`` certifies against crashed neurons (Definition 2)
    with the Section IV-B substitution ``C -> sup phi``;
    ``mode="byzantine"`` certifies against arbitrary emissions within
    the given finite ``capacity`` (Assumption 1).
    """
    per_layer = tuple(
        max_failures_single_layer(
            network, l, epsilon, epsilon_prime, capacity=capacity, mode=mode
        )
        for l in range(1, network.depth + 1)
    )
    uniform = max_uniform_fraction(
        network, epsilon, epsilon_prime, capacity=capacity, mode=mode
    )
    maximal = greedy_max_total_failures(
        network, epsilon, epsilon_prime, capacity=capacity, mode=mode
    )
    return RobustnessCertificate(
        layer_sizes=network.layer_sizes,
        weight_maxes=network.weight_maxes(),
        lipschitz=network.lipschitz_constant,
        epsilon=epsilon,
        epsilon_prime=epsilon_prime,
        mode=mode,
        capacity=capacity,
        per_layer_max=per_layer,
        uniform_fraction=uniform,
        maximal_distribution=maximal,
        network=network,
    )


@dataclass(frozen=True)
class AuditReport:
    """Outcome of empirically auditing a certificate.

    ``sound`` is the hard property (no observed error exceeded the
    analytic bound); ``tightness`` in [0, 1] is the ratio of the worst
    observed error to the bound (1 = the bound is attained).
    """

    distribution: tuple[int, ...]
    analytic_bound: float
    worst_observed: float
    n_scenarios: int
    sound: bool

    @property
    def tightness(self) -> float:
        if self.analytic_bound == 0.0:
            return 1.0 if self.worst_observed == 0.0 else float("inf")
        return self.worst_observed / self.analytic_bound

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AuditReport(f={self.distribution}, bound={self.analytic_bound:.6g}, "
            f"observed={self.worst_observed:.6g}, tightness={self.tightness:.3f}, "
            f"sound={self.sound})"
        )


def empirical_audit(
    certificate: RobustnessCertificate,
    x: np.ndarray,
    *,
    distribution: Optional[Sequence[int]] = None,
    n_scenarios: int = 500,
    seed: Optional[int] = 0,
    include_adversarial: bool = True,
) -> AuditReport:
    """Audit a certificate by fault injection.

    Samples ``n_scenarios`` random scenarios with the certified
    distribution (plus, optionally, the gradient-guided adversarial
    scenario), measures output errors over the input batch, and checks
    them against the analytic Fep.
    """
    from ..faults.adversary import (
        adversarial_byzantine_scenario,
        adversarial_crash_scenario,
    )
    from ..faults.campaign import _monte_carlo_campaign, run_campaign
    from ..faults.injector import FaultInjector
    from ..faults.types import ByzantineFault, CrashFault

    network = certificate.network
    dist = tuple(
        int(f)
        for f in (
            distribution if distribution is not None else certificate.maximal_distribution
        )
    )
    if certificate.mode == "crash":
        fault = CrashFault()
        injector = FaultInjector(network, capacity=network.output_bound)
    else:
        fault = ByzantineFault()
        injector = FaultInjector(network, capacity=certificate.capacity)

    result = _monte_carlo_campaign(
        injector,
        x,
        dist,
        n_scenarios=n_scenarios,
        fault=fault,
        seed=seed,
    )
    worst = result.max_error
    if include_adversarial and sum(dist) > 0:
        if certificate.mode == "crash":
            adv = adversarial_crash_scenario(network, dist, x)
        else:
            adv = adversarial_byzantine_scenario(
                network, dist, x, capacity=certificate.capacity
            )
        adv_result = run_campaign(injector, x, [adv])
        worst = max(worst, adv_result.max_error)

    bound = certificate.fep(dist)
    return AuditReport(
        distribution=dist,
        analytic_bound=bound,
        worst_observed=worst,
        n_scenarios=result.num_scenarios + (1 if include_adversarial else 0),
        sound=worst <= bound + 1e-9,
    )
