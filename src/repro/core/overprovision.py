"""Over-provisioning constructions (Section II-C, Corollary 1).

The paper's explanation for why fault tolerance is possible at all is
*over-provisioning*: networks carry more neurons than the minimal
``Nmin(eps)`` needed for an epsilon-approximation, and the surplus
precision ``eps' < eps`` is a budget that failures may consume.

This module provides:

* :func:`barron_nmin` — the ``Theta(1/eps)`` minimal-size estimate
  from Barron's approximation bound [34];
* :func:`replicate_network` — the canonical Corollary-1 construction:
  duplicate every hidden neuron ``r`` times and divide outgoing
  weights by ``r``.  The computed function is *identical* (testably
  bit-close), while every ``w_m^(l)``, ``l >= 2``, shrinks by ``r`` —
  so the same absolute failure count costs ~``1/r`` of the budget, and
  the tolerated count grows ~linearly in ``r``;
* :func:`minimal_replication_factor` — the smallest ``r`` making a
  target distribution tolerated.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from ..network.layers import DenseLayer
from ..network.model import FeedForwardNetwork
from .bounds import check_theorem3

__all__ = [
    "barron_nmin",
    "replicate_network",
    "minimal_replication_factor",
]


def barron_nmin(epsilon: float, constant: float = 1.0) -> int:
    """Estimate ``Nmin(eps) = Theta(1/eps)`` (Barron [34]).

    ``constant`` absorbs the target-function-dependent factor (the
    Barron norm); the default 1 gives the scaling law used in the
    over-provisioning discussion.
    """
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if constant <= 0:
        raise ValueError(f"constant must be positive, got {constant}")
    return max(1, math.ceil(constant / epsilon))


def replicate_network(network: FeedForwardNetwork, r: int) -> FeedForwardNetwork:
    """Duplicate every hidden neuron ``r`` times, preserving the function.

    Construction: each neuron of each hidden layer becomes ``r``
    identical copies.  A copy receives the *same* pre-activation as the
    original: its incoming weights from the previous (replicated)
    layer are the original weights divided by ``r`` (each of the ``r``
    source copies contributes one share); first-layer copies keep the
    original input weights (inputs are clients and are not
    replicated).  Outgoing weights are divided by ``r`` as well, so
    every consumer's sum is unchanged.

    Consequences (the Corollary-1 mechanism):

    * ``Fneu`` is *exactly* preserved — same epsilon';
    * ``N_l -> r * N_l`` and ``w_m^(l) -> w_m^(l) / r`` for
      ``l = 2..L+1`` — so Fep for a fixed distribution shrinks and the
      tolerated failure counts grow with ``r``.

    Only dense layers are supported (replication of shared-weight
    convolutional layers would break the weight-sharing structure).
    """
    if r < 1:
        raise ValueError(f"replication factor must be >= 1, got {r}")
    if r == 1:
        return network.copy()
    for layer in network.layers:
        if not isinstance(layer, DenseLayer):
            raise TypeError(
                f"replicate_network supports dense layers only, got {type(layer).__name__}"
            )

    new_layers: list[DenseLayer] = []
    prev_replicated = False
    for layer in network.layers:
        w = layer.dense_weights()
        # Rows (outputs) are replicated r times.
        w_rows = np.repeat(w, r, axis=0)
        if prev_replicated:
            # Columns (inputs) correspond to replicated sources: tile and
            # divide so each of the r source copies carries 1/r of the sum.
            w_new = np.repeat(w_rows, r, axis=1) / r
        else:
            w_new = w_rows
        bias_new = np.repeat(layer.bias, r) if layer.use_bias else None
        new_layers.append(
            DenseLayer(
                w_new.shape[1],
                w_new.shape[0],
                layer.activation,
                weights=w_new,
                bias=bias_new,
                use_bias=layer.use_bias,
            )
        )
        prev_replicated = True

    out_w = np.repeat(network.output_weights, r, axis=1) / r
    return FeedForwardNetwork(new_layers, out_w, network.output_bias)


def minimal_replication_factor(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
    *,
    mode: str = "crash",
    capacity: Optional[float] = None,
    max_r: int = 4096,
) -> tuple[int, FeedForwardNetwork]:
    """Smallest ``r`` whose replicated network tolerates ``failures``.

    ``failures`` is expressed against the *original* layer sizes and
    kept as absolute counts for the replicated network (the replicated
    net must survive the same number of dead neurons).  Returns
    ``(r, replicated_network)``; raises if no ``r <= max_r`` works.
    """
    failures = tuple(int(f) for f in failures)

    def works(r: int) -> bool:
        candidate = replicate_network(network, r)
        if not all(f < n for f, n in zip(failures, candidate.layer_sizes)):
            return False
        return bool(
            check_theorem3(
                candidate, failures, epsilon, epsilon_prime,
                capacity=capacity, mode=mode,
            )
        )

    # Exponential search for a working r, then binary refinement (Fep for a
    # fixed distribution decreases ~1/r, so tolerance is monotone in r).
    hi = 1
    while hi <= max_r and not works(hi):
        hi *= 2
    if hi > max_r:
        raise ValueError(
            f"no replication factor <= {max_r} tolerates {failures} "
            f"within budget {epsilon - epsilon_prime:g}"
        )
    lo = max(1, hi // 2)
    while lo < hi:
        mid = (lo + hi) // 2
        if works(mid):
            hi = mid
        else:
            lo = mid + 1
    return hi, replicate_network(network, hi)
