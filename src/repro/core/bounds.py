"""The paper's theorems as a checkable API.

Every result of the paper is exposed as a function returning a
:class:`BoundCheck` (or a scalar where the result *is* a scalar), so
experiments and user code can ask exactly the paper's question: *does
this network, over-provisioned to epsilon', still epsilon-approximate
its target under this failure distribution?*

The mapping is:

=============  ==========================================================
Paper          API
=============  ==========================================================
Theorem 1      :func:`theorem1_max_crashes`, :func:`check_theorem1`
Theorem 2      :func:`repro.core.fep.forward_error_propagation`
Theorem 3      :func:`check_theorem3` (Byzantine + crash modes)
Lemma 1        :func:`lemma1_unbounded_transmission`
Lemma 2        :func:`lemma2_synapse_neuron_equivalence`
Theorem 4      :func:`check_theorem4`
Theorem 5      :func:`repro.core.fep.precision_error_bound`,
               :func:`check_theorem5`
Corollary 2    :func:`corollary2_required_signals`
=============  ==========================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .fep import (
    forward_error_propagation,
    network_fep,
    network_precision_bound,
    network_synapse_fep,
)

__all__ = [
    "BoundCheck",
    "theorem1_max_crashes",
    "check_theorem1",
    "check_theorem3",
    "check_theorem4",
    "check_theorem5",
    "lemma1_unbounded_transmission",
    "lemma2_synapse_neuron_equivalence",
    "corollary2_required_signals",
]


@dataclass(frozen=True)
class BoundCheck:
    """Outcome of checking a failure distribution against a bound.

    Attributes
    ----------
    tolerated:
        Whether the distribution satisfies the theorem's condition
        (``error_bound <= budget``).
    error_bound:
        The analytic worst-case output perturbation (Fep or analogue).
    budget:
        The slack ``epsilon - epsilon_prime`` bought by over-provision.
    margin:
        ``budget - error_bound`` (negative when not tolerated).
    theorem:
        Which result produced this check.
    """

    tolerated: bool
    error_bound: float
    budget: float
    theorem: str

    @property
    def margin(self) -> float:
        return self.budget - self.error_bound

    def __bool__(self) -> bool:
        return self.tolerated

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        verdict = "tolerated" if self.tolerated else "NOT tolerated"
        return (
            f"BoundCheck[{self.theorem}]({verdict}: bound={self.error_bound:.6g} "
            f"vs budget={self.budget:.6g})"
        )


def _validate_epsilons(epsilon: float, epsilon_prime: float) -> float:
    if not (0 < epsilon_prime <= epsilon):
        raise ValueError(
            f"need 0 < epsilon_prime <= epsilon, got epsilon={epsilon}, "
            f"epsilon_prime={epsilon_prime}"
        )
    return epsilon - epsilon_prime


# ---------------------------------------------------------------------------
# Theorem 1 — single layer, crashes
# ---------------------------------------------------------------------------


def theorem1_max_crashes(
    epsilon: float,
    epsilon_prime: float,
    w_max: float,
) -> int:
    """Theorem 1: the largest ``Nfail`` with ``Nfail <= (eps - eps')/w_m``.

    ``w_max`` is the maximum |weight| from the single layer to the
    output node.  Returns 0 when the budget is zero (an exactly-minimal
    network tolerates nothing — Section II-C).
    """
    budget = _validate_epsilons(epsilon, epsilon_prime)
    if w_max <= 0:
        raise ValueError(f"w_max must be positive, got {w_max}")
    return int(math.floor(budget / w_max + 1e-12))


def check_theorem1(
    network: FeedForwardNetwork,
    n_fail: int,
    epsilon: float,
    epsilon_prime: float,
) -> BoundCheck:
    """Check ``n_fail`` crashes against Theorem 1 on a 1-layer network."""
    if network.depth != 1:
        raise ValueError(
            f"Theorem 1 addresses single-layer networks; this one has "
            f"L={network.depth} (use check_theorem3)"
        )
    if n_fail < 0:
        raise ValueError(f"n_fail must be >= 0, got {n_fail}")
    budget = _validate_epsilons(epsilon, epsilon_prime)
    w_max = network.weight_max(2)
    bound = n_fail * w_max
    return BoundCheck(bound <= budget + 1e-12, bound, budget, "theorem1")


# ---------------------------------------------------------------------------
# Theorem 3 — multilayer, Byzantine (or crash) neurons
# ---------------------------------------------------------------------------


def check_theorem3(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "byzantine",
) -> BoundCheck:
    """Theorem 3: the distribution ``(f_l)`` is tolerated iff
    ``Fep <= epsilon - epsilon_prime`` (and ``f_l < N_l`` for all l).

    ``mode="crash"`` applies the Section IV-B substitution
    ``C -> sup phi``; ``mode="byzantine"`` requires finite ``capacity``.
    """
    budget = _validate_epsilons(epsilon, epsilon_prime)
    failures = tuple(int(f) for f in failures)
    if len(failures) != network.depth:
        raise ValueError(
            f"failure distribution length {len(failures)} != depth {network.depth}"
        )
    if any(f >= n for f, n in zip(failures, network.layer_sizes)):
        # Theorem 3 requires f_l < N_l: at least one correct neuron per layer.
        fep = network_fep(network, failures, capacity=capacity, mode=mode)
        return BoundCheck(False, fep, budget, "theorem3")
    fep = network_fep(network, failures, capacity=capacity, mode=mode)
    return BoundCheck(fep <= budget + 1e-12, fep, budget, "theorem3")


# ---------------------------------------------------------------------------
# Theorem 4 — Byzantine synapses
# ---------------------------------------------------------------------------


def check_theorem4(
    network: FeedForwardNetwork,
    synapse_failures: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: float,
) -> BoundCheck:
    """Theorem 4: synapse distribution ``(f_1..f_{L+1})`` tolerated iff
    the synapse Fep is within the over-provision budget."""
    budget = _validate_epsilons(epsilon, epsilon_prime)
    synapse_failures = tuple(int(f) for f in synapse_failures)
    if len(synapse_failures) != network.depth + 1:
        raise ValueError(
            f"synapse distribution length {len(synapse_failures)} != "
            f"L+1 = {network.depth + 1}"
        )
    bound = network_synapse_fep(network, synapse_failures, capacity=capacity)
    return BoundCheck(bound <= budget + 1e-12, bound, budget, "theorem4")


# ---------------------------------------------------------------------------
# Theorem 5 — precision reduction
# ---------------------------------------------------------------------------


def check_theorem5(
    network: FeedForwardNetwork,
    lambdas: Sequence[float],
    epsilon: float,
    epsilon_prime: float,
) -> BoundCheck:
    """Theorem 5: per-layer implementation errors ``lambda_l`` keep the
    epsilon-approximation iff their propagated bound fits the budget."""
    budget = _validate_epsilons(epsilon, epsilon_prime)
    bound = network_precision_bound(network, lambdas)
    return BoundCheck(bound <= budget + 1e-12, bound, budget, "theorem5")


# ---------------------------------------------------------------------------
# Lemmas
# ---------------------------------------------------------------------------


def lemma1_unbounded_transmission(capacity: Optional[float]) -> bool:
    """Lemma 1: with unbounded transmission (``capacity=None`` or inf),
    no network tolerates a single Byzantine neuron.

    Returns ``True`` when the *network is vulnerable* (capacity
    unbounded).  The quantitative face of the lemma is the limit
    ``Nfail -> 0`` as ``C -> inf`` in Theorem 3, which the experiments
    exhibit.
    """
    return capacity is None or not np.isfinite(capacity)


def lemma2_synapse_neuron_equivalence(
    capacity: float,
    lipschitz: float,
) -> float:
    """Lemma 2: a faulty synapse is at worst a neuron error of ``C * K``.

    Returns that worst-case equivalent neuron-output error (the
    receiving neuron squashes a received-sum perturbation of at most
    the synapse's corrupted emission, amplified by Lipschitzness).
    """
    if capacity <= 0 or lipschitz <= 0:
        raise ValueError("capacity and lipschitz must be positive")
    return float(capacity * lipschitz)


# ---------------------------------------------------------------------------
# Corollary 2 — boosting
# ---------------------------------------------------------------------------


def corollary2_required_signals(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
) -> tuple[int, ...]:
    """Corollary 2: per-layer signal quotas under a tolerated crash
    distribution.

    If ``(f_l)`` satisfies Theorem 3 in crash mode, a neuron of layer
    ``l`` may fire after receiving only ``N_{l-1} - f_{l-1}`` signals
    from its left layer (treating the missing ones as crashed, value
    0), while the output provably stays epsilon-accurate.  Returns the
    quota for each layer ``2..L`` plus the output stage, i.e. a tuple
    of length ``L`` whose entry ``i`` is the quota for the consumers of
    layer ``i+1``'s signals.

    Raises when the distribution is *not* tolerated — firing early
    would then void the guarantee.
    """
    check = check_theorem3(
        network, failures, epsilon, epsilon_prime, mode="crash"
    )
    if not check.tolerated:
        raise ValueError(
            f"distribution {tuple(failures)} is not tolerated "
            f"(Fep={check.error_bound:.6g} > budget={check.budget:.6g}); "
            "boosting would break the epsilon-guarantee"
        )
    return tuple(
        n - f for n, f in zip(network.layer_sizes, failures)
    )
