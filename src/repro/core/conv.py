"""Convolutional refinement of the bounds (paper, Section VI).

For convolutional layers the paper observes two structural facts that
loosen the bounds (i.e. tolerate more failures):

1. **Weight sharing** — the max-weight constraint ``w_m^(l)`` runs over
   the ``R^(l)`` distinct kernel values only, not over
   ``N_l x N_{l-1}`` independent weights.  Our layer protocol already
   encodes this (:meth:`repro.network.layers.Conv1DLayer.max_abs_weight`
   reads the kernel), so the *generic* Fep applied to a conv network is
   automatically the refined one.  :func:`dense_equivalent_weight_maxes`
   computes what the bound *would* use if the network were treated as an
   arbitrary dense network with the same dense-equivalent matrices —
   on trained dense nets of the same shape the max over the much larger
   weight set is systematically larger, which is the paper's
   comparative point.

2. **Limited receptive field** — an error at one neuron of layer ``l``
   reaches at most ``R^(l+1)`` neurons of layer ``l+1`` (its fan-out),
   not all of them.  :func:`receptive_field_fep` exploits this with a
   sound reachability cap: the number of corrupted-signal-carrying
   neurons at layer ``l'`` is at most ``min(N_l' - f_l', a_{l'-1} *
   fanout(l'))`` where ``a`` counts affected neurons (each affected
   neuron feeds at most ``fanout`` consumers).  This never exceeds the
   generic ``(N_l' - f_l')`` factor, so the refined bound is at most
   the generic one.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..network.layers import Conv1DLayer
from ..network.model import FeedForwardNetwork
from .fep import _network_capacity

__all__ = [
    "dense_equivalent_weight_maxes",
    "max_fanout",
    "receptive_field_fep",
    "bound_reduction_factor",
]


def dense_equivalent_weight_maxes(network: FeedForwardNetwork) -> tuple[float, ...]:
    """Per-stage max |weight| over the *dense-equivalent* matrices.

    For conv layers this equals the kernel max (zeros are structural,
    not synapses), so on a purely convolutional network it coincides
    with ``network.weight_maxes()``; it differs on mixed or dense
    networks and is exposed for the comparison experiments.
    """
    maxes = []
    for layer in network.layers:
        dense = layer.dense_weights()
        maxes.append(float(np.max(np.abs(dense))) if dense.size else 0.0)
    maxes.append(float(np.max(np.abs(network.output_weights))))
    return tuple(maxes)


def max_fanout(network: FeedForwardNetwork, layer: int) -> int:
    """Max number of layer-``layer+1`` consumers of one layer-``layer``
    neuron (1-based; ``layer = L`` fans out to the output node).

    Dense stages fan out to the full next width; a 1-D conv stage with
    receptive field ``R`` fans out to at most ``R`` positions.
    """
    if not 1 <= layer <= network.depth:
        raise ValueError(f"layer {layer} outside 1..{network.depth}")
    if layer == network.depth:
        return network.n_outputs
    nxt = network.layers[layer]  # 0-based: the (layer+1)-th layer
    if isinstance(nxt, Conv1DLayer):
        return min(nxt.receptive_field, nxt.n_out)
    return nxt.n_out


def receptive_field_fep(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
) -> float:
    """Fep refined by receptive-field reachability (Section VI).

    For each origin layer ``l`` the generic per-stage factor
    ``(N_l' - f_l')`` is replaced by ``min(N_l' - f_l', reach_l')``
    where ``reach`` starts at ``f_l * fanout(l)`` and multiplies by the
    next fan-out at each stage.  On dense networks ``fanout = N_l'``
    and the refinement reduces to Theorem 2's Fep exactly.
    """
    failures = tuple(int(f) for f in failures)
    if len(failures) != network.depth:
        raise ValueError(
            f"distribution length {len(failures)} != depth {network.depth}"
        )
    c = _network_capacity(network, capacity, mode)
    K = network.lipschitz_constant
    sizes = network.layer_sizes
    w = network.weight_maxes()
    L = network.depth

    total = 0.0
    for l in range(1, L + 1):
        f_l = failures[l - 1]
        if f_l == 0:
            continue
        term = float(f_l) * K ** (L - l)
        carriers = float(f_l)  # corrupted-signal sources entering stage l+1
        for lp in range(l + 1, L + 2):  # stages l+1 .. L+1
            if lp == L + 1:
                width = 1.0
            else:
                width = float(sizes[lp - 1] - failures[lp - 1])
            reach = carriers * max_fanout(network, lp - 1)
            carriers = min(width, reach)
            term *= carriers * w[lp - 1]
        total += term
    return float(c * total)


def bound_reduction_factor(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
) -> float:
    """``generic_fep / refined_fep`` — how much Section VI buys (>= 1)."""
    from .fep import network_fep

    generic = network_fep(network, failures, capacity=capacity, mode=mode)
    refined = receptive_field_fep(network, failures, capacity=capacity, mode=mode)
    if refined == 0.0:
        return 1.0 if generic == 0.0 else float("inf")
    return generic / refined
