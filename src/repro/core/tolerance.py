"""Inverting the bounds: how many failures *can* this network take?

Theorem 3 gives a yes/no condition on a failure distribution
``(f_l)``.  This module solves the practical inverse problems:

* the largest failure count in a single layer (others healthy);
* the largest uniform per-layer fraction;
* a maximal *total* failure count via greedy allocation (Fep is not
  additive across layers — failing a neuron in layer ``l`` also
  *removes* it from the ``(N_l - f_l)`` amplification factor of
  earlier-layer terms, so allocation order matters);
* the exact Pareto frontier of tolerated distributions for small
  networks, via the vectorised :func:`repro.core.fep.fep_many`;
* critical parameter values: the largest capacity ``C`` and the
  largest weight scale compatible with a target distribution (the
  knobs of the Section V-C trade-offs).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork
from .fep import fep_many, forward_error_propagation, network_fep

__all__ = [
    "max_failures_single_layer",
    "max_uniform_fraction",
    "greedy_max_total_failures",
    "tolerated_distributions",
    "max_capacity_for_distribution",
    "max_weight_scale_for_distribution",
    "max_synapse_failures_single_stage",
]


def _budget(epsilon: float, epsilon_prime: float) -> float:
    if not (0 < epsilon_prime <= epsilon):
        raise ValueError(
            f"need 0 < epsilon_prime <= epsilon, got {epsilon}, {epsilon_prime}"
        )
    return epsilon - epsilon_prime


def _resolve_capacity(
    network: FeedForwardNetwork, capacity: Optional[float], mode: str
) -> float:
    from .fep import _network_capacity

    return _network_capacity(network, capacity, mode)


def max_failures_single_layer(
    network: FeedForwardNetwork,
    layer: int,
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
) -> int:
    """Largest ``f_layer`` tolerated with every other layer healthy.

    Fep restricted to one layer is linear in ``f_layer``'s own count
    but the suffix products of *earlier* terms are unaffected (they are
    zero), so the answer is an exact floor division — capped at
    ``N_layer - 1`` (Theorem 3 requires at least one correct neuron).
    """
    if not 1 <= layer <= network.depth:
        raise ValueError(f"layer {layer} outside 1..{network.depth}")
    budget = _budget(epsilon, epsilon_prime)
    c = _resolve_capacity(network, capacity, mode)
    sizes = network.layer_sizes
    # Per-unit cost of one failure in `layer`:
    unit = np.zeros(network.depth, dtype=int)
    unit[layer - 1] = 1
    cost = forward_error_propagation(
        unit, sizes, network.weight_maxes(), network.lipschitz_constant, c
    )
    if cost <= 0:
        return sizes[layer - 1] - 1
    best = int(np.floor(budget / cost + 1e-12))
    return max(0, min(best, sizes[layer - 1] - 1))


def max_uniform_fraction(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
    resolution: int = 100,
) -> float:
    """Largest fraction ``p`` such that failing ``floor(p * N_l)`` neurons
    in *every* layer simultaneously is tolerated.

    Scans ``p`` on a grid of ``resolution`` steps (Fep is not monotone
    in ``p`` in general — failed neurons also stop amplifying — so we
    scan rather than bisect; in practice the tolerated set is an
    interval containing 0).
    """
    budget = _budget(epsilon, epsilon_prime)
    c = _resolve_capacity(network, capacity, mode)
    sizes = np.asarray(network.layer_sizes)
    best = 0.0
    fractions = np.linspace(0.0, 1.0, resolution + 1)
    candidates = np.floor(fractions[:, None] * sizes[None, :])
    # Theorem 3 requires f_l < N_l: stop before any layer fails entirely.
    valid = np.all(candidates < sizes[None, :], axis=1)
    feps = fep_many(
        np.minimum(candidates, sizes[None, :] - 1),
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constant,
        c,
    )
    ok = valid & (feps <= budget + 1e-12)
    for p, good in zip(fractions, ok):
        if good:
            best = float(p)
        else:
            break
    return best


def greedy_max_total_failures(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
) -> tuple[int, ...]:
    """A maximal tolerated distribution by greedy one-at-a-time allocation.

    At each step, tentatively add one failure to each layer, keep the
    choice with the smallest resulting Fep if it still fits the budget;
    stop when no single addition fits.  The result is maximal (no
    single failure can be added) though not necessarily maximum —
    :func:`tolerated_distributions` gives the exact frontier for small
    networks.
    """
    budget = _budget(epsilon, epsilon_prime)
    c = _resolve_capacity(network, capacity, mode)
    sizes = network.layer_sizes
    w = network.weight_maxes()
    K = network.lipschitz_constant
    current = np.zeros(network.depth, dtype=int)

    while True:
        candidates = []
        for l0 in range(network.depth):
            if current[l0] + 1 >= sizes[l0]:
                continue  # keep at least one correct neuron per layer
            trial = current.copy()
            trial[l0] += 1
            candidates.append(trial)
        if not candidates:
            break
        feps = fep_many(np.array(candidates), sizes, w, K, c)
        order = int(np.argmin(feps))
        if feps[order] <= budget + 1e-12:
            current = candidates[order]
        else:
            break
    return tuple(int(v) for v in current)


def tolerated_distributions(
    network: FeedForwardNetwork,
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
    max_grid: int = 200_000,
) -> list[tuple[int, ...]]:
    """All maximal tolerated distributions (the Pareto frontier).

    Checks Theorem 3 over the full grid ``prod (N_l)`` of distributions
    (refusing beyond ``max_grid`` points) and returns the distributions
    not dominated by another tolerated one.  Everything stays at the
    array level: the grid is an index array (``np.indices``, never a
    Python list of tuples), the Theorem-3 check is one ``fep_many``
    call, and the Pareto filter shifts the tolerated-set lattice along
    each axis instead of probing a Python set point by point.
    """
    budget = _budget(epsilon, epsilon_prime)
    c = _resolve_capacity(network, capacity, mode)
    sizes = network.layer_sizes
    grid_size = int(np.prod(sizes))
    if grid_size > max_grid:
        raise ValueError(
            f"distribution grid has {grid_size} points (> {max_grid}); "
            "use greedy_max_total_failures instead"
        )
    L = len(sizes)
    grid = np.indices(sizes).reshape(L, -1).T.astype(np.float64)  # (M, L)
    feps = fep_many(
        grid, sizes, network.weight_maxes(), network.lipschitz_constant, c
    )
    tolerated = (feps <= budget + 1e-12).reshape(sizes)  # boolean lattice
    # A tolerated point is dominated iff any +1-along-one-axis neighbour
    # is also tolerated: shift the lattice down each axis and OR.
    dominated = np.zeros_like(tolerated)
    for axis in range(L):
        src = [slice(None)] * L
        dst = [slice(None)] * L
        src[axis] = slice(1, None)
        dst[axis] = slice(0, -1)
        dominated[tuple(dst)] |= tolerated[tuple(src)]
    maximal = np.argwhere(tolerated & ~dominated)  # lexicographically sorted
    return [tuple(int(v) for v in row) for row in maximal]


def max_synapse_failures_single_stage(
    network: FeedForwardNetwork,
    stage: int,
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: float,
) -> int:
    """Largest count of Byzantine synapses tolerated at one stage.

    Stage ``l`` (1-based, ``1..L+1``) holds the synapses into layer
    ``l``.  Theorem 4's bound is linear in the per-stage count, so the
    answer is a floor division, capped at the number of physical
    synapses at that stage.
    """
    if not 1 <= stage <= network.depth + 1:
        raise ValueError(f"stage {stage} outside 1..{network.depth + 1}")
    budget = _budget(epsilon, epsilon_prime)
    from .fep import network_synapse_fep

    unit = [0] * (network.depth + 1)
    unit[stage - 1] = 1
    cost = network_synapse_fep(network, unit, capacity=capacity)
    if stage <= network.depth:
        stage_size = network.layers[stage - 1].num_synapses
    else:
        stage_size = network.n_outputs * network.layer_sizes[-1]
    if cost <= 0:
        return stage_size
    return min(int(np.floor(budget / cost + 1e-12)), stage_size)


def max_capacity_for_distribution(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
) -> float:
    """Largest transmission capacity ``C`` under which ``(f_l)`` is
    still tolerated (Byzantine mode).

    Fep is linear in ``C``, so ``C* = budget / (Fep / C)``; returns
    ``inf`` when the distribution is free (all ``f_l = 0``) —
    consistent with Lemma 1: any actual Byzantine neuron forces a
    finite capacity.
    """
    budget = _budget(epsilon, epsilon_prime)
    unit_fep = network_fep(network, failures, capacity=1.0, mode="byzantine")
    if unit_fep == 0.0:
        return float("inf")
    return budget / unit_fep


def max_weight_scale_for_distribution(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    epsilon: float,
    epsilon_prime: float,
    *,
    capacity: Optional[float] = None,
    mode: str = "crash",
    tol: float = 1e-9,
) -> float:
    """Largest uniform weight-scaling ``s`` keeping ``(f_l)`` tolerated.

    Scaling every synaptic weight by ``s`` scales each Fep term by
    ``s**(L + 1 - l)`` — monotone increasing in ``s`` — so the answer
    is found by bisection.  This quantifies the Section V-C weight
    trade-off: smaller weights buy robustness.
    """
    budget = _budget(epsilon, epsilon_prime)
    c = _resolve_capacity(network, capacity, mode)
    sizes = network.layer_sizes
    w = np.asarray(network.weight_maxes())
    K = network.lipschitz_constant

    def fep_at(scale: float) -> float:
        return forward_error_propagation(failures, sizes, w * scale, K, c)

    if fep_at(1.0) <= budget:
        lo, hi = 1.0, 2.0
        while fep_at(hi) <= budget and hi < 1e12:
            lo, hi = hi, hi * 2.0
        if hi >= 1e12:
            return float("inf")
    else:
        lo, hi = 0.0, 1.0
    while hi - lo > tol * max(1.0, hi):
        mid = 0.5 * (lo + hi)
        if fep_at(mid) <= budget:
            lo = mid
        else:
            hi = mid
    return lo
