"""Forward Error Propagation — the paper's central quantity (Theorem 2).

Given an ``L``-layer network with ``N_l`` neurons per layer, per-layer
max incoming weights ``w_m^(l)`` (``l = 1..L+1``; stage ``L+1`` feeds
the linear output node), a ``K``-Lipschitz activation and transmission
capacity ``C``, a per-layer failure distribution ``f = (f_1..f_L)``
perturbs the output by at most::

    Fep(f) = C * sum_{l=1}^{L} f_l * K^(L-l)
                 * prod_{l'=l+1}^{L+1} (N_l' - f_l') * w_m^(l')

with the convention ``N_{L+1} = 1``, ``f_{L+1} = 0``.  The bound is
*tight* (worst-case constructions attain it) and computing it needs
only the topology — no input sweep, no configuration enumeration.

This module provides the scalar bound, its per-layer decomposition
(useful to see which layer dominates), vectorised evaluation over many
distributions at once, and network-aware wrappers that pull
``N_l, w_m, K`` straight from a :class:`FeedForwardNetwork`.

Crash-only variant (Section IV-B): when no neuron is Byzantine, ``C``
can be replaced by ``sup phi`` (1 for the sigmoid) — the most a correct
(and hence a silently-missing) neuron could have contributed.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..network.model import FeedForwardNetwork

__all__ = [
    "fep_terms",
    "forward_error_propagation",
    "fep_many",
    "network_fep",
    "network_fep_terms",
    "synapse_fep",
    "network_synapse_fep",
    "combined_fep",
    "network_combined_fep",
    "heterogeneous_fep",
    "network_heterogeneous_fep",
    "precision_error_bound",
    "network_precision_bound",
]


def _validate(
    failures: Sequence[int],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
    capacity: float,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    f = np.asarray(failures, dtype=np.float64)
    n = np.asarray(layer_sizes, dtype=np.float64)
    w = np.asarray(weight_maxes, dtype=np.float64)
    L = f.shape[-1]
    if n.shape != (L,):
        raise ValueError(f"layer_sizes length {n.shape} != failures length {L}")
    if w.shape != (L + 1,):
        raise ValueError(
            f"weight_maxes must have length L+1={L + 1} "
            f"(w_m^(1)..w_m^(L+1)), got {w.shape}"
        )
    if np.any(f < 0):
        raise ValueError("failure counts must be non-negative")
    if np.any(f > n):
        raise ValueError(f"failures {failures} exceed layer sizes {tuple(layer_sizes)}")
    if np.any(n <= 0):
        raise ValueError("layer sizes must be positive")
    if np.any(w < 0):
        raise ValueError("weight maxima must be non-negative")
    if lipschitz <= 0:
        raise ValueError(f"Lipschitz constant must be positive, got {lipschitz}")
    if capacity <= 0 or not np.isfinite(capacity):
        raise ValueError(
            f"capacity must be positive and finite, got {capacity} "
            "(unbounded transmission tolerates nothing — Lemma 1)"
        )
    return f, n, w


def fep_terms(
    failures: Sequence[int],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
    capacity: float = 1.0,
) -> np.ndarray:
    """Per-layer contributions to Fep; ``fep_terms(...).sum() == Fep``.

    Term ``l`` (1-based) is the worst-case output perturbation caused
    by the ``f_l`` failures *of layer l alone*, amplified by the
    ``L - l`` squashing stages and the correct fan-outs on its right.
    The decomposition makes the paper's observation quantitative: the
    effect of a failure grows exponentially (``K^(L-l)``) with the
    depth at which it occurs (for ``K > 1``; it *shrinks* for ``K < 1``).
    """
    f, n, w = _validate(failures, layer_sizes, weight_maxes, lipschitz, capacity)
    L = f.shape[0]
    # Extended arrays with the output-node convention appended.
    n_ext = np.concatenate([n, [1.0]])
    f_ext = np.concatenate([f, [0.0]])
    # suffix[l0] = prod_{l'=l0+2..L+1} (N_l' - f_l') * w_m^(l') in 1-based
    # layer terms, i.e. the product attached to term l = l0+1.  w holds
    # w_m^(1)..w_m^(L+1) at indices 0..L, so stage l' reads w[l'-1].
    # Reversed cumprod realises all L suffix products in one pass.
    mult = (n_ext[1:] - f_ext[1:]) * w[1:]  # (L,): stages 2..L+1
    suffix = np.cumprod(mult[::-1])[::-1]
    powers = lipschitz ** np.arange(L - 1, -1, -1, dtype=np.float64)
    return capacity * f * powers * suffix


def forward_error_propagation(
    failures: Sequence[int],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
    capacity: float = 1.0,
) -> float:
    """``Fep`` of Theorem 2 — the tight output-perturbation bound.

    Parameters
    ----------
    failures:
        Per-layer failure counts ``(f_1, ..., f_L)``.
    layer_sizes:
        ``(N_1, ..., N_L)``.
    weight_maxes:
        ``(w_m^(1), ..., w_m^(L+1))``; ``w_m^(1)`` (input synapses) is
        accepted for symmetry but does not enter the neuron-failure
        bound (errors originate at neuron *outputs*).
    lipschitz:
        ``K`` of the activation.
    capacity:
        ``C`` of Assumption 1; pass the activation's ``sup phi`` for
        the crash-only variant.
    """
    return float(fep_terms(failures, layer_sizes, weight_maxes, lipschitz, capacity).sum())


def fep_many(
    failure_matrix: np.ndarray,
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
    capacity: float = 1.0,
) -> np.ndarray:
    """Vectorised Fep for ``(M, L)`` failure distributions at once.

    Used by the tolerance-region solvers, which scan thousands of
    candidate distributions.
    """
    F = np.asarray(failure_matrix, dtype=np.float64)
    if F.ndim != 2:
        raise ValueError(f"failure_matrix must be 2-D (M, L), got {F.shape}")
    M, L = F.shape
    n = np.asarray(layer_sizes, dtype=np.float64)
    w = np.asarray(weight_maxes, dtype=np.float64)
    if n.shape != (L,) or w.shape != (L + 1,):
        raise ValueError("layer_sizes / weight_maxes lengths inconsistent with F")
    if np.any(F < 0) or np.any(F > n):
        raise ValueError("failure counts outside [0, N_l]")
    if lipschitz <= 0 or capacity <= 0 or not np.isfinite(capacity):
        raise ValueError("lipschitz and capacity must be positive (capacity finite)")

    n_ext = np.concatenate([n, [1.0]])[None, :]  # (1, L+1)
    F_ext = np.concatenate([F, np.zeros((M, 1))], axis=1)  # (M, L+1)
    mult = (n_ext[:, 1:] - F_ext[:, 1:]) * w[None, 1:]  # (M, L): stages 2..L+1
    # suffix[:, l0] = prod over columns l0..L-1 of mult — one reversed
    # cumprod along the layer axis instead of a per-column Python loop.
    suffix = np.cumprod(mult[:, ::-1], axis=1)[:, ::-1]
    powers = lipschitz ** np.arange(L - 1, -1, -1, dtype=np.float64)
    terms = capacity * F * powers[None, :] * suffix
    return terms.sum(axis=1)


# ---------------------------------------------------------------------------
# Network-aware wrappers
# ---------------------------------------------------------------------------


def _network_capacity(
    network: FeedForwardNetwork, capacity: Optional[float], mode: str
) -> float:
    if mode == "crash":
        c = network.output_bound
        if not np.isfinite(c):
            raise ValueError(
                "crash-mode bounds need a bounded activation "
                f"(sup|phi| = {c}); this network violates the paper's "
                "squashing-function hypothesis"
            )
        return c
    if mode == "byzantine":
        if capacity is None:
            raise ValueError(
                "Byzantine-mode bounds need a finite capacity C (Assumption 1); "
                "with unbounded transmission nothing is tolerated (Lemma 1)"
            )
        return float(capacity)
    raise ValueError(f"mode must be 'crash' or 'byzantine', got {mode!r}")


def network_fep(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    *,
    capacity: Optional[float] = None,
    mode: str = "byzantine",
) -> float:
    """Fep for a concrete network, reading ``N_l, w_m, K`` off the model.

    ``mode="crash"`` substitutes ``sup phi`` for ``C`` (Section IV-B);
    ``mode="byzantine"`` requires an explicit finite ``capacity``.
    """
    c = _network_capacity(network, capacity, mode)
    return forward_error_propagation(
        failures,
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constant,
        c,
    )


def network_fep_terms(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    *,
    capacity: Optional[float] = None,
    mode: str = "byzantine",
) -> np.ndarray:
    """Per-layer Fep decomposition for a concrete network."""
    c = _network_capacity(network, capacity, mode)
    return fep_terms(
        failures,
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constant,
        c,
    )


# ---------------------------------------------------------------------------
# Synapse failures (Theorem 4)
# ---------------------------------------------------------------------------


def synapse_fep(
    failures: Sequence[int],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
    capacity: float = 1.0,
) -> float:
    """Theorem 4's bound for Byzantine *synapses*.

    ``failures = (f_1, ..., f_{L+1})`` counts faulty synapses per
    stage; stage ``l`` holds the synapses from layer ``l-1`` into layer
    ``l`` (stage ``L+1`` feeds the output node).  Each faulty synapse
    at stage ``l`` corrupts the emission it carries by at most ``C``,
    giving a received-sum error ``<= w_m^(l) * C``, a squashed error
    ``<= K * w_m^(l) * C`` (Lemma 2), then propagates like a neuron
    error of layer ``l``::

        Fep_syn = C * sum_{l=1}^{L+1} f_l * K^(L+1-l) * w_m^(l)
                      * prod_{l'=l+1}^{L+1} (N_l' - g_l') * w_m^(l')

    where ``g_l'`` is the number of *neurons* of layer ``l'`` whose
    output is already corrupted by those stage-``l'`` synapse faults
    (conservatively 0 here — keeping all ``N_l'`` multipliers is the
    worst case, and matches the paper's statement with ``f'_l`` the
    neuron-failure counts, zero in a pure-synapse scenario).

    The ``l = L+1`` term is ``C * f_{L+1} * w_m^(L+1)`` — no Lipschitz
    factor, since the output node is linear.
    """
    f = np.asarray(failures, dtype=np.float64)
    n = np.asarray(layer_sizes, dtype=np.float64)
    w = np.asarray(weight_maxes, dtype=np.float64)
    L = n.shape[0]
    if f.shape != (L + 1,):
        raise ValueError(f"failures must have length L+1={L + 1}, got {f.shape}")
    if w.shape != (L + 1,):
        raise ValueError(f"weight_maxes must have length L+1={L + 1}, got {w.shape}")
    if np.any(f < 0):
        raise ValueError("failure counts must be non-negative")
    if lipschitz <= 0 or capacity <= 0 or not np.isfinite(capacity):
        raise ValueError("lipschitz and capacity must be positive (capacity finite)")

    n_ext = np.concatenate([n, [1.0]])  # extended sizes, stage l' multiplier base
    total = 0.0
    for l in range(1, L + 2):  # stage index, 1-based
        if f[l - 1] == 0:
            continue
        # K exponent: L+1-l squashings on the path (the corrupted emission
        # passes through layers l..L; stage L+1 contributes none).
        k_pow = lipschitz ** (L + 1 - l)
        prod = 1.0
        for lp in range(l + 1, L + 2):
            prod *= n_ext[lp - 1] * w[lp - 1]
        total += f[l - 1] * k_pow * w[l - 1] * prod
    return float(capacity * total)


def network_synapse_fep(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    *,
    capacity: float,
) -> float:
    """Theorem-4 synapse bound for a concrete network."""
    return synapse_fep(
        failures,
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constant,
        capacity,
    )


def heterogeneous_fep(
    failures: Sequence[int],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz_constants: Sequence[float],
    capacity: float = 1.0,
) -> float:
    """Fep refined for per-layer Lipschitz constants.

    The paper states Theorem 2 with a single ``K`` (the worst over the
    network); when layers use differently-tuned activations the exact
    amplification of a layer-``l`` error is the *product* of the
    downstream constants::

        Fep_het(f) = C * sum_l f_l * (prod_{l'=l+1..L} K_l')
                         * (prod_{l'=l+1..L+1} (N_l' - f_l') * w_m^(l'))

    which reduces to Theorem 2's ``K**(L-l)`` when all ``K_l`` are
    equal, and never exceeds the homogeneous bound evaluated at
    ``K = max_l K_l`` (tested).  The refinement is sound for the same
    reason the original is: each traversed activation multiplies the
    incoming perturbation by at most its own constant.
    """
    f = np.asarray(failures, dtype=np.float64)
    n = np.asarray(layer_sizes, dtype=np.float64)
    w = np.asarray(weight_maxes, dtype=np.float64)
    ks = np.asarray(lipschitz_constants, dtype=np.float64)
    L = n.shape[0]
    if f.shape != (L,) or w.shape != (L + 1,) or ks.shape != (L,):
        raise ValueError(
            f"inconsistent lengths: f{f.shape}, N({L},), w{w.shape}, K{ks.shape}"
        )
    if np.any(f < 0) or np.any(f > n):
        raise ValueError("failure counts outside [0, N_l]")
    if np.any(ks <= 0) or capacity <= 0 or not np.isfinite(capacity):
        raise ValueError("Lipschitz constants and capacity must be positive")

    n_ext = np.concatenate([n, [1.0]])
    f_ext = np.concatenate([f, [0.0]])
    total = 0.0
    for l in range(1, L + 1):
        if f[l - 1] == 0:
            continue
        k_prod = float(np.prod(ks[l:]))  # downstream activations l+1..L
        carrier = 1.0
        for lp in range(l + 1, L + 2):
            carrier *= (n_ext[lp - 1] - f_ext[lp - 1]) * w[lp - 1]
        total += f[l - 1] * k_prod * carrier
    return float(capacity * total)


def network_heterogeneous_fep(
    network: FeedForwardNetwork,
    failures: Sequence[int],
    *,
    capacity: Optional[float] = None,
    mode: str = "byzantine",
) -> float:
    """Per-layer-K Fep for a concrete network."""
    c = _network_capacity(network, capacity, mode)
    return heterogeneous_fep(
        failures,
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constants(),
        c,
    )


def combined_fep(
    neuron_failures: Sequence[int],
    synapse_failures: Sequence[int],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
    capacity: float = 1.0,
) -> float:
    """Joint bound for simultaneous neuron *and* synapse failures.

    The paper notes "our bound can easily be extended to the case where
    synapses can fail": both error sources enter the output linearly
    through the same triangle-inequality pipeline, so their worst-case
    contributions **add**.  We keep the neuron-failure ``(N_l - f_l)``
    discounts in both terms (failed neurons amplify neither their own
    errors nor transiting synapse errors), which keeps the sum a sound
    upper bound:

    ``combined <= Fep(neuron_failures) + Fep_syn(synapse_failures)``

    evaluated with the *same* ``(N_l - f_l)`` carrier counts.
    """
    f = np.asarray(neuron_failures, dtype=np.float64)
    s = np.asarray(synapse_failures, dtype=np.float64)
    n = np.asarray(layer_sizes, dtype=np.float64)
    w = np.asarray(weight_maxes, dtype=np.float64)
    L = n.shape[0]
    if f.shape != (L,) or s.shape != (L + 1,):
        raise ValueError(
            f"need neuron failures of length L={L} and synapse failures of "
            f"length L+1={L + 1}, got {f.shape} and {s.shape}"
        )
    neuron_part = forward_error_propagation(f, n, w, lipschitz, capacity)
    # Synapse part, with carriers discounted by the failed neurons.
    if np.any(s < 0):
        raise ValueError("synapse failure counts must be non-negative")
    n_ext = np.concatenate([n, [1.0]])
    f_ext = np.concatenate([f, [0.0]])
    total = 0.0
    for l in range(1, L + 2):
        if s[l - 1] == 0:
            continue
        k_pow = lipschitz ** (L + 1 - l)
        prod = 1.0
        for lp in range(l + 1, L + 2):
            prod *= (n_ext[lp - 1] - f_ext[lp - 1]) * w[lp - 1]
        total += s[l - 1] * k_pow * w[l - 1] * prod
    return float(neuron_part + capacity * total)


def network_combined_fep(
    network: FeedForwardNetwork,
    neuron_failures: Sequence[int],
    synapse_failures: Sequence[int],
    *,
    capacity: Optional[float] = None,
    mode: str = "byzantine",
) -> float:
    """Combined neuron+synapse bound for a concrete network."""
    c = _network_capacity(network, capacity, mode)
    return combined_fep(
        neuron_failures,
        synapse_failures,
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constant,
        c,
    )


# ---------------------------------------------------------------------------
# Precision / memory-cost reduction (Theorem 5)
# ---------------------------------------------------------------------------


def precision_error_bound(
    lambdas: Sequence[float],
    layer_sizes: Sequence[int],
    weight_maxes: Sequence[float],
    lipschitz: float,
) -> float:
    """Theorem 5: output error when *every* neuron of layer ``l`` carries
    an implementation error of magnitude at most ``lambda_l``::

        |Fneu - Flambda| <= sum_{l=1}^{L} K^(L-l) * lambda_l
                              * prod_{l'=l}^{L} N_l' * w_m^(l'+1)

    This is the paper's first theoretical quantification of the
    precision-reduction trade-offs observed experimentally in Proteus
    [31]; :mod:`repro.quantization` produces the ``lambda_l`` for
    concrete fixed-point schemes.
    """
    lam = np.asarray(lambdas, dtype=np.float64)
    n = np.asarray(layer_sizes, dtype=np.float64)
    w = np.asarray(weight_maxes, dtype=np.float64)
    L = n.shape[0]
    if lam.shape != (L,):
        raise ValueError(f"lambdas must have length L={L}, got {lam.shape}")
    if w.shape != (L + 1,):
        raise ValueError(f"weight_maxes must have length L+1={L + 1}, got {w.shape}")
    if np.any(lam < 0):
        raise ValueError("per-layer error magnitudes must be non-negative")
    if lipschitz <= 0:
        raise ValueError(f"Lipschitz constant must be positive, got {lipschitz}")

    # suffix[l0] = prod_{l'=l..L} N_l' * w_m^(l'+1), 0-based l0 = l-1.
    suffix = np.ones(L + 1, dtype=np.float64)
    for idx in range(L - 1, -1, -1):
        suffix[idx] = suffix[idx + 1] * n[idx] * w[idx + 1]
    powers = lipschitz ** np.arange(L - 1, -1, -1, dtype=np.float64)
    return float(np.sum(powers * lam * suffix[:L]))


def network_precision_bound(
    network: FeedForwardNetwork,
    lambdas: Sequence[float],
) -> float:
    """Theorem-5 bound for a concrete network."""
    return precision_error_bound(
        lambdas,
        network.layer_sizes,
        network.weight_maxes(),
        network.lipschitz_constant,
    )
