"""Warn-once plumbing for the pre-spec entry points.

The declarative run-spec layer (:mod:`repro.specs`) is the stable way
to launch campaigns, survival studies and chaos runs; the historical
direct-kwargs entry points (``monte_carlo_campaign``,
``run_chaos_campaign``) keep working as thin shims but announce their
replacement exactly once per process — loud enough to steer new code,
quiet enough not to flood a 100k-scenario campaign log.
"""

from __future__ import annotations

import warnings
from typing import Set

__all__ = ["warn_spec_deprecation", "reset_spec_deprecation_warnings"]

_WARNED: Set[str] = set()


def warn_spec_deprecation(name: str, spec_class: str) -> None:
    """Emit one :class:`DeprecationWarning` per process for ``name``.

    ``spec_class`` names the spec type that replaces the direct-kwargs
    call (e.g. ``"repro.CampaignSpec"``); the message points at
    ``repro.run`` as the dispatcher.
    """
    if name in _WARNED:
        return
    _WARNED.add(name)
    warnings.warn(
        f"{name}(...) is a deprecated direct-kwargs entry point; build a "
        f"{spec_class} and pass it to repro.run(spec) instead "
        "(see docs/api.md). This warning is emitted once per process.",
        DeprecationWarning,
        stacklevel=3,
    )


def reset_spec_deprecation_warnings() -> None:
    """Forget which entry points already warned (test hook)."""
    _WARNED.clear()
