"""repro — a reproduction of *When Neurons Fail* (El Mhamdi &
Guerraoui, IPDPS 2017).

The paper views a feed-forward neural network as a distributed system
whose neurons and synapses fail independently, and derives tight
bounds — via the *Forward Error Propagation* quantity ``Fep`` — on the
failure distributions a network tolerates without any recovery
learning.

Quickstart
----------
>>> import numpy as np
>>> from repro import build_mlp, certify, CampaignSpec, FaultSpec, NetworkRef, SamplerSpec, run
>>> net = build_mlp(2, [16, 8], activation={"name": "sigmoid", "k": 0.5}, seed=0)
>>> cert = certify(net, epsilon=0.3, epsilon_prime=0.1, mode="crash")
>>> spec = CampaignSpec(
...     network=NetworkRef(builder="mlp", params={"input_dim": 2, "hidden": [16, 8], "seed": 0}),
...     sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
...     fault=FaultSpec(kind="crash"), n_scenarios=1000)
>>> result = run(spec)                                     # doctest: +SKIP

Every campaign, survival and chaos study is a *spec* — a frozen,
JSON-round-trippable, content-hashable dataclass — executed by the
single dispatcher :func:`repro.run` (see :mod:`repro.specs` and
docs/api.md).

Subpackages
-----------
- :mod:`repro.core` — Fep and Theorems 1-5 (the contribution);
- :mod:`repro.network` — the from-scratch network substrate;
- :mod:`repro.training` — backprop trainer (incl. Fep regulariser);
- :mod:`repro.faults` — fault models, injection, campaigns;
- :mod:`repro.distributed` — process-per-neuron simulator, boosting;
- :mod:`repro.chaos` — temporal chaos campaigns over deployed fleets;
- :mod:`repro.specs` — the declarative run-spec layer + ``repro.run``;
- :mod:`repro.quantization` — Theorem-5 precision reduction;
- :mod:`repro.analysis` — Lipschitz/topology/statistics utilities;
- :mod:`repro.experiments` — one module per paper figure/claim.
"""

from .chaos import ChaosReport, run_chaos_campaign
from .core import (
    BoundCheck,
    RobustnessCertificate,
    certify,
    check_theorem1,
    check_theorem3,
    check_theorem4,
    check_theorem5,
    empirical_audit,
    forward_error_propagation,
    network_fep,
    precision_error_bound,
    synapse_fep,
    theorem1_max_crashes,
)
from .faults import (
    ByzantineFault,
    CrashFault,
    FailureScenario,
    FaultInjector,
    monte_carlo_campaign,
    random_failure_scenario,
    worst_case_crash_scenario,
)
from .network import (
    FeedForwardNetwork,
    Sigmoid,
    build_conv_net,
    build_figure3_network,
    build_mlp,
    load_network,
    save_network,
)
from .specs import (
    SPEC_VERSION,
    CampaignSpec,
    ChaosSpec,
    ServiceSpec,
    DetectorSpec,
    EngineSpec,
    FaultSpec,
    NetworkRef,
    ObsSpec,
    PolicySpec,
    ProcessSpec,
    SamplerSpec,
    StoppingSpec,
    SpecError,
    SurvivalSpec,
    TelemetrySpec,
    TrafficSpec,
    load_spec,
    run,
    save_spec,
    spec_from_dict,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "forward_error_propagation",
    "network_fep",
    "synapse_fep",
    "precision_error_bound",
    "theorem1_max_crashes",
    "check_theorem1",
    "check_theorem3",
    "check_theorem4",
    "check_theorem5",
    "BoundCheck",
    "RobustnessCertificate",
    "certify",
    "empirical_audit",
    # network
    "FeedForwardNetwork",
    "Sigmoid",
    "build_mlp",
    "build_conv_net",
    "build_figure3_network",
    "save_network",
    "load_network",
    # faults
    "FaultInjector",
    "FailureScenario",
    "CrashFault",
    "ByzantineFault",
    "random_failure_scenario",
    "worst_case_crash_scenario",
    "monte_carlo_campaign",
    # chaos (the deployment-lifecycle subsystem)
    "ChaosReport",
    "run_chaos_campaign",
    # the declarative run-spec layer (the stable public API)
    "run",
    "SPEC_VERSION",
    "SpecError",
    "NetworkRef",
    "FaultSpec",
    "SamplerSpec",
    "StoppingSpec",
    "EngineSpec",
    "ObsSpec",
    "CampaignSpec",
    "SurvivalSpec",
    "ProcessSpec",
    "DetectorSpec",
    "PolicySpec",
    "TrafficSpec",
    "TelemetrySpec",
    "ChaosSpec",
    "ServiceSpec",
    "spec_from_dict",
    "load_spec",
    "save_spec",
]
