"""The example scripts must run end to end (they contain their own
assertions) — executed as subprocesses, as a user would."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        proc = run_example("quickstart.py")
        assert proc.returncode == 0, proc.stderr
        assert "OK:" in proc.stdout

    def test_flight_controller(self):
        proc = run_example("flight_controller_certification.py")
        assert proc.returncode == 0, proc.stderr
        assert "CERTIFIED" in proc.stdout

    def test_neuromorphic_memory(self):
        proc = run_example("neuromorphic_memory_budget.py")
        assert proc.returncode == 0, proc.stderr
        assert "bound respected" in proc.stdout

    def test_boosting(self):
        proc = run_example("boosting_stragglers.py")
        assert proc.returncode == 0, proc.stderr
        assert "speedup" in proc.stdout

    def test_mission_reliability(self):
        proc = run_example("mission_reliability_planning.py")
        assert proc.returncode == 0, proc.stderr
        assert "smallest replication" in proc.stdout

    def test_reproduce_paper_single(self, tmp_path):
        # A throwaway store: the run must not touch the committed
        # results/ manifest (cache hits now update its counters).
        proc = run_example(
            "reproduce_paper.py", "figure2",
            "--results-dir", str(tmp_path / "results"),
        )
        assert proc.returncode == 0, proc.stderr
        assert "1 experiments reproduced" in proc.stdout

    def test_reproduce_paper_unknown(self):
        proc = run_example("reproduce_paper.py", "nonsense")
        assert proc.returncode == 2
