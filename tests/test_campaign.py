"""Unit tests for fault-injection campaigns."""

import numpy as np
import pytest

from repro.faults.campaign import (
    CampaignResult,
    count_crash_configurations,
    exhaustive_crash_campaign,
    monte_carlo_campaign,
    run_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import all_single_neuron_faults, crash_scenario
from repro.faults.types import ByzantineFault, NoiseFault
from repro.faults.scenarios import FailureScenario
from repro.network.model import NeuronAddress


class TestCampaignResult:
    def test_aggregates(self):
        r = CampaignResult(np.array([0.1, 0.5, 0.3]), ["a", "b", "c"])
        assert r.max_error == 0.5
        assert r.mean_error == pytest.approx(0.3)
        assert r.worst_scenario == "b"
        assert r.num_scenarios == 3

    def test_fraction_exceeding(self):
        r = CampaignResult(np.array([0.1, 0.5, 0.3]))
        assert r.fraction_exceeding(0.2) == pytest.approx(2 / 3)

    def test_empty(self):
        r = CampaignResult(np.empty(0))
        assert r.max_error == 0.0 and r.worst_scenario is None
        assert r.fraction_exceeding(0.0) == 0.0

    def test_merge(self):
        a = CampaignResult(np.array([0.1]), ["a"])
        b = CampaignResult(np.array([0.9]), ["b"])
        merged = a.merged_with(b)
        assert merged.num_scenarios == 2 and merged.worst_scenario == "b"

    def test_summary_string(self):
        assert "n=3" in CampaignResult(np.array([0.1, 0.2, 0.3])).summary()


class TestRunCampaign:
    def test_chunking_does_not_change_results(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = list(all_single_neuron_faults(small_net))
        a = run_campaign(inj, batch, scenarios, chunk_size=3)
        b = run_campaign(inj, batch, scenarios, chunk_size=1000)
        np.testing.assert_allclose(a.errors, b.errors)

    def test_falls_back_to_scalar_path_for_dynamic_faults(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = [
            FailureScenario({NeuronAddress(1, 0): NoiseFault(sigma=0.01)}, name="n")
        ]
        result = run_campaign(inj, batch, scenarios)
        assert result.num_scenarios == 1 and result.max_error > 0

    def test_invalid_chunk_size(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        with pytest.raises(ValueError):
            run_campaign(inj, batch, [], chunk_size=0)

    def test_names_kept_and_dropped(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = [crash_scenario([(1, 0)], name="one")]
        with_names = run_campaign(inj, batch, scenarios, keep_names=True)
        without = run_campaign(inj, batch, scenarios, keep_names=False)
        assert with_names.scenario_names == ["one"]
        assert without.scenario_names == []

    @pytest.mark.slow
    def test_parallel_workers_match_serial(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = list(all_single_neuron_faults(small_net))
        serial = run_campaign(inj, batch, scenarios)
        parallel = run_campaign(inj, batch, list(scenarios), n_workers=2, chunk_size=4)
        np.testing.assert_allclose(serial.errors, parallel.errors)


class TestMonteCarloCampaign:
    def test_seed_reproducibility(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        a = monte_carlo_campaign(inj, batch, (2, 1), n_scenarios=20, seed=1)
        b = monte_carlo_campaign(inj, batch, (2, 1), n_scenarios=20, seed=1)
        np.testing.assert_array_equal(a.errors, b.errors)

    def test_byzantine_fault_injection(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        crash = monte_carlo_campaign(inj, batch, (2, 1), n_scenarios=30, seed=2)
        byz = monte_carlo_campaign(
            inj, batch, (2, 1), n_scenarios=30, seed=2, fault=ByzantineFault()
        )
        # Byzantine deviation (C=1) hurts at least as much as a crash on
        # average (crash deviation is |y| <= 1).
        assert byz.mean_error >= 0.5 * crash.mean_error

    def test_zero_failures_zero_error(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        r = monte_carlo_campaign(inj, batch, (0, 0), n_scenarios=5, seed=0)
        np.testing.assert_allclose(r.errors, 0.0)


class TestExhaustive:
    def test_count_formula(self, small_net):
        assert count_crash_configurations(small_net, 2) == 91  # C(14, 2)

    def test_exhaustive_evaluates_all(self, single_layer_net, rng):
        inj = FaultInjector(single_layer_net, capacity=1.0)
        x = rng.random((8, 2))
        r = exhaustive_crash_campaign(inj, x, 2)
        assert r.num_scenarios == 45

    def test_exhaustive_refuses_explosion(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        with pytest.raises(ValueError, match="combinatorial|configurations"):
            exhaustive_crash_campaign(inj, batch, 7, max_configurations=100)

    def test_exhaustive_max_at_least_single_worst(self, single_layer_net, rng):
        inj = FaultInjector(single_layer_net, capacity=1.0)
        x = rng.random((8, 2))
        singles = exhaustive_crash_campaign(inj, x, 1)
        pairs = exhaustive_crash_campaign(inj, x, 2)
        assert pairs.max_error >= singles.max_error - 1e-12
