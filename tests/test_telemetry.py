"""Telemetry-native chaos: trace emission, replay, AIOps scoring.

Covers the telemetry subsystem end to end: the vectorised episode RLE
against its scalar oracle, the degenerate-fleet MTBF/MTTR contract,
trace persistence and retention, deterministic detector replay, the
AIOps scoring tasks, and the TelemetrySpec schema's strict
back-compat with pre-telemetry ChaosSpec payloads.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.chaos import (
    ACTION_REPAIR,
    ACTION_RESET,
    CUSUMDetector,
    TelemetryTrace,
    ThresholdDetector,
    concat_traces,
    detection_scores,
    episode_runs,
    incidents,
    load_trace,
    localization_truth,
    rca_truth,
    replay_detectors,
    replay_report,
    report_from_trace,
    save_trace,
    score_localization,
    score_rca,
    scorecard,
)
from repro.chaos.campaign import _run_chaos_campaign
from repro.chaos.detectors import CertifiedAlarmDetector
from repro.chaos.policies import DetectorRepairPolicy
from repro.chaos.processes import (
    ComponentLifetimeProcess,
    TransientBurstProcess,
)
from repro.chaos.telemetry import _episode_runs_scalar
from repro.network import build_mlp

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "specs"


# ---------------------------------------------------------------------------
# Shared live campaign (session-scoped: several tests read the trace)
# ---------------------------------------------------------------------------


def _detectors():
    return [
        ThresholdDetector(threshold=0.05),
        CUSUMDetector(drift=0.01, threshold=0.1),
    ]


def _campaign(n_workers=0, telemetry=True):
    from types import SimpleNamespace

    rng = np.random.default_rng(5)
    net = build_mlp(2, [12, 10], activation="sigmoid", seed=5,
                    output_scale=0.3)
    x = rng.uniform(-1, 1, size=(16, 2))
    procs = [
        ComponentLifetimeProcess(rate=0.25),
        TransientBurstProcess(burst_rate=0.3, fraction=0.5),
    ]
    tel = SimpleNamespace(enabled=True, ground_truth=True)
    return _run_chaos_campaign(
        net, x, procs,
        epochs=48, n_replicas=32, epsilon=0.12, epsilon_prime=0.1,
        detectors=_detectors(),
        policy=DetectorRepairPolicy(detector="threshold"),
        seed=11, epochs_chunk=8, n_workers=n_workers,
        telemetry=tel if telemetry else None,
    )


@pytest.fixture(scope="module")
def live_report():
    return _campaign()


@pytest.fixture(scope="module")
def live_trace(live_report):
    return live_report.trace


# ---------------------------------------------------------------------------
# Episode RLE: vectorised vs scalar oracle
# ---------------------------------------------------------------------------


class TestEpisodeRuns:
    def _assert_matches_oracle(self, grid):
        got = episode_runs(grid)
        want = _episode_runs_scalar(grid)
        for g, w in zip(got, want):
            assert g.dtype == np.int64
            np.testing.assert_array_equal(g, w)

    @pytest.mark.parametrize("seed", range(8))
    def test_random_grids_match_scalar_oracle(self, seed):
        rng = np.random.default_rng(seed)
        shape = rng.integers(1, 40, size=2)
        self._assert_matches_oracle(rng.random(shape) < 0.4)

    @pytest.mark.parametrize(
        "grid",
        [
            np.zeros((5, 3), dtype=bool),          # fault-free
            np.ones((5, 3), dtype=bool),           # one run per replica
            np.ones((1, 4), dtype=bool),           # single-epoch runs
            np.zeros((0, 0), dtype=bool),          # empty
            np.zeros((6, 0), dtype=bool),          # no replicas
            np.array([[1], [0], [1], [1], [0], [1]], dtype=bool),
        ],
        ids=["all-healthy", "all-violating", "one-epoch", "empty",
             "no-replicas", "alternating"],
    )
    def test_edge_grids_match_scalar_oracle(self, grid):
        self._assert_matches_oracle(grid)

    def test_run_accounting(self):
        grid = np.zeros((6, 2), dtype=bool)
        grid[1:3, 0] = True   # replica 0: onset 1, length 2
        grid[5, 0] = True     # replica 0: onset 5, length 1 (ends at E)
        grid[0:6, 1] = True   # replica 1: full-horizon run
        rep, onset, length = episode_runs(grid)
        assert rep.tolist() == [0, 0, 1]
        assert onset.tolist() == [1, 5, 0]
        assert length.tolist() == [2, 1, 6]


# ---------------------------------------------------------------------------
# Degenerate-fleet MTBF/MTTR contract
# ---------------------------------------------------------------------------


def _grid_trace(viol, down, **kwargs):
    E, R = viol.shape
    defaults = dict(
        epochs=E, n_replicas=R, epsilon=0.5, epsilon_prime=0.1,
        layer_sizes=(3, 2), process_kinds=("Toy",),
        detector_names=(), policy_name="none", epochs_chunk=max(E, 1),
        block_sizes=(R,), viol=viol, down=down,
    )
    defaults.update(kwargs)
    return TelemetryTrace(**defaults)


class TestDegenerateFleets:
    def test_fault_free_fleet_mtbf_mttr_nan(self):
        E, R = 6, 4
        trace = _grid_trace(
            np.zeros((E, R), dtype=bool), np.zeros((E, R), dtype=bool)
        )
        report = report_from_trace(trace)
        assert report.n_violation_episodes == 0
        assert np.isnan(report.mtbf) and np.isnan(report.mttr)
        assert report.availability == 1.0

    def test_all_down_fleet_mtbf_mttr_nan(self):
        E, R = 6, 4
        trace = _grid_trace(
            np.zeros((E, R), dtype=bool), np.ones((E, R), dtype=bool)
        )
        report = report_from_trace(trace)
        assert report.n_violation_episodes == 0
        assert np.isnan(report.mtbf) and np.isnan(report.mttr)
        assert report.availability == 0.0
        assert report.downtime_fraction == 1.0

    def test_contract_is_documented(self):
        from repro.chaos import ChaosReport

        doc = ChaosReport.__doc__ or ""
        assert "nan" in doc

    def test_episodes_present_keeps_finite_stats(self):
        E, R = 6, 2
        viol = np.zeros((E, R), dtype=bool)
        viol[2:4, 0] = True
        report = report_from_trace(
            _grid_trace(viol, np.zeros((E, R), dtype=bool))
        )
        assert report.n_violation_episodes == 1
        assert report.mtbf == float(E * R - 2) and report.mttr == 2.0


# ---------------------------------------------------------------------------
# Trace persistence and retention
# ---------------------------------------------------------------------------


class TestTracePersistence:
    def test_round_trip_is_bitwise(self, live_trace, tmp_path):
        path = save_trace(live_trace, tmp_path / "trace")
        assert path.suffix == ".json"
        loaded = load_trace(path)
        assert live_trace.equals(loaded)
        # ... and the derived report is bitwise identical too.
        assert (
            report_from_trace(loaded).to_dict()
            == report_from_trace(live_trace).to_dict()
        )

    def test_load_accepts_either_suffix(self, live_trace, tmp_path):
        save_trace(live_trace, tmp_path / "t.json")
        assert live_trace.equals(load_trace(tmp_path / "t.npz"))
        assert live_trace.equals(load_trace(tmp_path / "t"))

    def test_schema_version_gate(self, live_trace, tmp_path):
        path = save_trace(live_trace, tmp_path / "t")
        meta = json.loads(path.read_text(encoding="utf-8"))
        meta["schema_version"] = 999
        path.write_text(json.dumps(meta), encoding="utf-8")
        with pytest.raises(ValueError, match="schema_version"):
            load_trace(path)

    def test_retained_drops_errors(self, live_trace):
        trimmed = live_trace.retained(retain_errors=False)
        assert trimmed.errors is None
        with pytest.raises(ValueError, match="retain_errors"):
            trimmed.observed()
        # grid statistics survive the trim
        full = report_from_trace(live_trace).to_dict()
        slim = report_from_trace(trimmed).to_dict()
        assert slim == full

    def test_retained_epoch_prefix(self, live_trace):
        n = 16
        trimmed = live_trace.retained(retain_epochs=n)
        assert trimmed.epochs == n
        assert trimmed.viol.shape == (n, live_trace.n_replicas)
        np.testing.assert_array_equal(trimmed.viol, live_trace.viol[:n])
        assert int(trimmed.action_epoch.max(initial=0)) < n
        assert trimmed.process_hits.shape[1] == n
        # prefix keeps replay exact over the retained horizon
        replayed = replay_detectors(trimmed, _detectors())
        for name in trimmed.detector_names:
            np.testing.assert_array_equal(
                replayed[name], live_trace.alarms[name][:n]
            )

    def test_retained_rejects_zero_epochs(self, live_trace):
        with pytest.raises(ValueError, match="retain_epochs"):
            live_trace.retained(retain_epochs=0)


# ---------------------------------------------------------------------------
# Serial == parallel, and the recorder's schedule-neutrality
# ---------------------------------------------------------------------------


class TestDeterminism:
    def test_parallel_trace_bitwise_equal(self, live_report):
        parallel = _campaign(n_workers=2)
        assert parallel.trace.equals(live_report.trace)
        assert parallel.to_dict() == live_report.to_dict()

    def test_ground_truth_capture_does_not_move_the_schedule(
        self, live_report
    ):
        """Recording draws nothing from the RNG: the same campaign
        with telemetry off produces the identical report."""
        plain = _campaign(telemetry=False)
        assert plain.trace.has_ground_truth is False
        assert plain.to_dict() == live_report.to_dict()
        assert np.array_equal(plain.trace.viol, live_report.trace.viol)

    def test_concat_rejects_mismatched_blocks(self, live_trace):
        from dataclasses import replace

        other = replace(live_trace, epsilon=0.9)
        with pytest.raises(ValueError, match="disagree"):
            concat_traces([live_trace, other])


# ---------------------------------------------------------------------------
# Replay
# ---------------------------------------------------------------------------


class TestReplay:
    def test_replay_matches_live_alarms_bitwise(self, live_trace):
        replayed = replay_detectors(live_trace, _detectors())
        for name in live_trace.detector_names:
            np.testing.assert_array_equal(
                replayed[name], live_trace.alarms[name]
            )

    def test_replay_certified_detector_matches_live(self):
        """The stateful certified alarm (repair-log replays inside its
        update) survives the trace round trip too."""
        from types import SimpleNamespace

        rng = np.random.default_rng(5)
        net = build_mlp(2, [12, 10], activation="sigmoid", seed=5,
                        output_scale=0.3)
        x = rng.uniform(-1, 1, size=(16, 2))

        def dets():
            return [
                ThresholdDetector(threshold=0.05),
                CertifiedAlarmDetector(net, 0.25, 0.12, 0.1),
            ]

        report = _run_chaos_campaign(
            net, x, [ComponentLifetimeProcess(rate=0.25)],
            epochs=32, n_replicas=32, epsilon=0.12, epsilon_prime=0.1,
            detectors=dets(),
            policy=DetectorRepairPolicy(detector="threshold"),
            seed=11, epochs_chunk=8,
            telemetry=SimpleNamespace(enabled=True, ground_truth=False),
        )
        replayed = replay_detectors(report.trace, dets())
        for name in report.trace.detector_names:
            np.testing.assert_array_equal(
                replayed[name], report.trace.alarms[name]
            )

    def test_replay_report_swaps_detector_stats_only(self, live_trace):
        report = replay_report(live_trace, [ThresholdDetector(0.05)])
        base = report_from_trace(live_trace)
        assert tuple(report.detector_stats) == ("threshold",)
        assert report.availability == base.availability
        assert report.n_violation_episodes == base.n_violation_episodes
        assert (
            report.detector_stats["threshold"]
            == base.detector_stats["threshold"]
        )

    def test_replay_requires_error_channel(self, live_trace):
        with pytest.raises(ValueError, match="retain_errors"):
            replay_detectors(
                live_trace.retained(retain_errors=False), _detectors()
            )

    def test_replay_rejects_duplicate_names(self, live_trace):
        with pytest.raises(ValueError, match="unique"):
            replay_detectors(
                live_trace, [ThresholdDetector(0.1), ThresholdDetector(0.2)]
            )


# ---------------------------------------------------------------------------
# AIOps scoring
# ---------------------------------------------------------------------------


class TestAiops:
    def _toy_trace(self):
        """Hand-built two-incident trace with known ground truth."""
        E, R, L, P = 8, 2, 2, 2
        viol = np.zeros((E, R), dtype=bool)
        viol[2:5, 0] = True   # incident A: replica 0, onset 2, len 3
        viol[6, 1] = True     # incident B: replica 1, onset 6, len 1
        crash = np.zeros((E, R, L), dtype=np.int32)
        crash[2:, 0, 0] = 1   # incident A: layer 0 damaged at onset
        transient = np.zeros((E, R, L), dtype=np.int32)
        transient[6, 1, 1] = 2  # incident B: layer 1 damaged at onset
        hits = np.zeros((P, E, R), dtype=np.int32)
        hits[0, 2, 0] = 1     # process 0 caused incident A
        hits[1, 6, 1] = 2     # process 1 caused incident B
        return _grid_trace(
            viol, np.zeros((E, R), dtype=bool),
            process_kinds=("Lifetime", "Bursts"),
            crash_counts=crash, transient_counts=transient,
            process_hits=hits,
        )

    def test_incidents_enumeration(self):
        incs = incidents(self._toy_trace())
        assert [(i.replica, i.onset, i.length) for i in incs] == [
            (0, 2, 3), (1, 6, 1)
        ]
        assert incs[0].end == 5

    def test_detection_scores_exact(self):
        trace = self._toy_trace()
        alarms = np.zeros(trace.viol.shape, dtype=bool)
        alarms[4, 0] = True   # catches incident A, two epochs late
        alarms[0, 1] = True   # false alarm (healthy, in service)
        scores = detection_scores(trace, alarms)
        assert scores["n_incidents"] == 2
        assert scores["detected"] == 1
        assert scores["detection_rate"] == 0.5
        assert scores["mean_ttd"] == 2.0
        assert scores["false_alarm_cells"] == 1
        assert scores["replica_precision"] == 1.0  # both flagged violate
        assert scores["replica_recall"] == 1.0

    def test_detection_rejects_wrong_shape(self):
        trace = self._toy_trace()
        with pytest.raises(ValueError, match="shape"):
            detection_scores(trace, np.zeros((3, 3), dtype=bool))

    def test_localization_truth_and_scoring(self):
        trace = self._toy_trace()
        truth = localization_truth(trace)
        assert truth == [(0,), (1,)]
        perfect = score_localization(trace, truth)
        assert perfect["layer_precision"] == 1.0
        assert perfect["layer_recall"] == 1.0
        # claiming every layer: recall 1, precision 1/2
        sloppy = score_localization(trace, [(0, 1), (0, 1)])
        assert sloppy["layer_recall"] == 1.0
        assert sloppy["layer_precision"] == 0.5

    def test_rca_truth_and_scoring(self):
        trace = self._toy_trace()
        truth = rca_truth(trace)
        assert truth == [0, 1]
        assert score_rca(trace, truth)["accuracy"] == 1.0
        half = score_rca(trace, [0, 0])
        assert half["accuracy"] == 0.5
        assert half["by_kind"]["Lifetime"]["accuracy"] == 1.0
        assert half["by_kind"]["Bursts"]["accuracy"] == 0.0

    def test_ground_truth_required(self):
        bare = _grid_trace(
            np.zeros((4, 2), dtype=bool), np.zeros((4, 2), dtype=bool)
        )
        with pytest.raises(ValueError, match="ground.truth|ground_truth"):
            localization_truth(bare)
        with pytest.raises(ValueError, match="ground_truth"):
            rca_truth(bare)

    def test_live_campaign_oracles_are_perfect(self, live_trace):
        sheet = scorecard(live_trace)
        assert sheet["n_incidents"] > 0
        assert sheet["localization_oracle"]["layer_precision"] == 1.0
        assert sheet["localization_oracle"]["layer_recall"] == 1.0
        assert sheet["rca_oracle"]["accuracy"] == 1.0
        thresh = sheet["detection"]["threshold"]
        assert thresh["detection_rate"] <= 1.0
        assert thresh["mean_ttd"] >= 0.0

    def test_scorecard_without_ground_truth(self):
        viol = np.zeros((4, 2), dtype=bool)
        viol[1, 0] = True
        trace = _grid_trace(
            viol, np.zeros((4, 2), dtype=bool),
            detector_names=("threshold",),
            alarms={"threshold": viol.copy()},
        )
        sheet = scorecard(trace)
        assert sheet["ground_truth"] == "absent"
        assert sheet["detection"]["threshold"]["detection_rate"] == 1.0


# ---------------------------------------------------------------------------
# Event channels
# ---------------------------------------------------------------------------


class TestEventChannels:
    def test_repair_and_reset_events_recorded(self, live_trace):
        repair_epochs, repair_replicas = live_trace.actions(ACTION_REPAIR)
        assert repair_epochs.size > 0  # the repair policy fired
        assert int(repair_replicas.max()) < live_trace.n_replicas
        assert int(repair_epochs.max()) < live_trace.epochs
        reset_epochs, _ = live_trace.actions(ACTION_RESET)
        assert reset_epochs.size == 0  # no rejuvenation in this campaign


# ---------------------------------------------------------------------------
# TelemetrySpec schema back-compat
# ---------------------------------------------------------------------------


class TestTelemetrySpecSchema:
    def test_old_payloads_lower_and_hash_unchanged(self):
        """A pre-telemetry ChaosSpec payload (no ``telemetry`` key)
        must parse, serialise back byte-identically, and keep its
        content hash — stored artifacts stay cache-valid."""
        from repro.specs import ChaosSpec, spec_from_dict

        path = FIXTURE_DIR / "chaos_survival_experiment.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        assert "telemetry" not in payload
        spec = spec_from_dict(payload)
        assert spec.telemetry is None
        assert spec.to_dict() == payload
        assert isinstance(spec, ChaosSpec)

    def test_default_spec_omits_telemetry_key(self):
        from repro.experiments.exp_chaos_survival import chaos_survival_spec

        assert "telemetry" not in chaos_survival_spec().to_dict()

    def test_telemetry_spec_round_trip(self):
        from repro.specs import ChaosSpec, TelemetrySpec, spec_from_dict

        from repro.experiments.exp_incident_replay import (
            incident_replay_spec,
        )

        spec = incident_replay_spec()
        payload = spec.to_dict()
        assert payload["telemetry"]["enabled"] is True
        back = spec_from_dict(payload)
        assert isinstance(back, ChaosSpec)
        assert back == spec
        assert back.telemetry == TelemetrySpec()

    def test_retain_epochs_validated(self):
        from repro.specs import SpecError, TelemetrySpec

        with pytest.raises(SpecError, match="retain_epochs"):
            TelemetrySpec(retain_epochs=0)


# ---------------------------------------------------------------------------
# Golden-fixture parity: every stored chaos spec derives its report
# from the trace, bitwise-identically serial vs parallel
# ---------------------------------------------------------------------------


CHAOS_FIXTURES = sorted(FIXTURE_DIR.glob("chaos_*.json"))


@pytest.mark.parametrize("path", CHAOS_FIXTURES,
                         ids=[p.stem for p in CHAOS_FIXTURES])
def test_golden_chaos_fixture_trace_parity(path):
    from repro.specs import load_spec, run

    spec = load_spec(path)
    serial = run(spec)
    assert serial.trace is not None
    # the report IS report_from_trace(trace) — re-deriving is bitwise
    assert report_from_trace(serial.trace).to_dict() == serial.to_dict()
    parallel = run(spec, workers=2)
    assert parallel.trace.equals(serial.trace)
    assert parallel.to_dict() == serial.to_dict()
