"""The declarative run-spec layer: validation, serialization, hashing,
dispatch equivalence, deprecation shims, and spec-keyed artifacts."""

import json
import warnings

import numpy as np
import pytest

import repro
from repro.deprecation import reset_spec_deprecation_warnings
from repro.specs import (
    SPEC_VERSION,
    CampaignSpec,
    ChaosSpec,
    DetectorSpec,
    EngineSpec,
    FaultSpec,
    NetworkRef,
    PolicySpec,
    ProcessSpec,
    SamplerSpec,
    SpecError,
    SurvivalSpec,
    TrafficSpec,
    load_spec,
    run,
    save_spec,
    spec_from_dict,
)

NET = NetworkRef(
    builder="mlp",
    params={
        "input_dim": 2,
        "hidden": [8, 6],
        "activation": {"name": "sigmoid", "k": 0.5},
        "init": {"name": "uniform", "scale": 0.1},
        "output_scale": 0.05,
        "seed": 40,
    },
)


def small_campaign(**kw):
    base = dict(
        network=NET,
        sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
        fault=FaultSpec(kind="crash"),
        n_scenarios=60,
        batch=4,
        seed=3,
    )
    base.update(kw)
    return CampaignSpec(**base)


def small_chaos(**kw):
    base = dict(
        network=NET,
        epsilon=0.5,
        epsilon_prime=0.1,
        processes=(ProcessSpec(kind="lifetime", rate=0.1),),
        epochs=8,
        replicas=6,
        batch=4,
        seed=3,
    )
    base.update(kw)
    return ChaosSpec(**base)


ALL_SPECS = [
    small_campaign(),
    small_campaign(
        sampler=SamplerSpec(kind="exhaustive", n_fail=1), fault=FaultSpec()
    ),
    small_campaign(
        sampler=SamplerSpec(
            kind="mixed",
            components=(
                SamplerSpec(
                    kind="fixed",
                    distribution=(1, 0),
                    fault=FaultSpec(kind="crash"),
                ),
                SamplerSpec(
                    kind="bernoulli",
                    p_fail=0.05,
                    fault=FaultSpec(kind="noise", sigma=0.05),
                ),
            ),
        )
    ),
    SurvivalSpec(network=NET, p_fail=0.05, epsilon=0.5, epsilon_prime=0.1),
    SurvivalSpec(
        network=NET,
        p_fail=0.05,
        epsilon=0.5,
        epsilon_prime=0.1,
        method="monte_carlo",
        fault=FaultSpec(kind="intermittent", p=0.7, inner=FaultSpec(kind="stuck", value=1.0)),
        n_trials=40,
        batch=4,
    ),
    small_chaos(),
    small_chaos(
        processes=(
            ProcessSpec(kind="lifetime", rate=0.05, shape=1.6),
            ProcessSpec(kind="bursts", rate=0.1, fraction=0.3),
        ),
        detectors=(DetectorSpec(kind="threshold"), DetectorSpec(kind="cusum")),
        policy=PolicySpec(kind="repair", latency=1, detector="cusum"),
        traffic=TrafficSpec(kind="bursty"),
    ),
]


class TestRoundTrip:
    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.spec_tag)
    def test_json_round_trip_is_identity(self, spec):
        payload = json.loads(json.dumps(spec.to_dict()))
        again = type(spec).from_dict(payload)
        assert again == spec
        assert again.to_dict() == spec.to_dict()
        assert again.content_hash() == spec.content_hash()

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=lambda s: s.spec_tag)
    def test_spec_from_dict_dispatches_on_tag(self, spec):
        assert spec_from_dict(spec.to_dict()) == spec

    def test_to_json_is_byte_stable(self):
        spec = small_campaign()
        assert spec.to_json() == type(spec).from_dict(spec.to_dict()).to_json()
        assert spec.to_json().endswith("\n")

    def test_save_and_load(self, tmp_path):
        spec = small_chaos()
        path = save_spec(spec, tmp_path / "chaos.json")
        assert load_spec(path) == spec

    def test_every_payload_carries_version_and_tag(self):
        for spec in ALL_SPECS:
            payload = spec.to_dict()
            assert payload["spec_version"] == SPEC_VERSION
            assert payload["spec"] == spec.spec_tag


class TestStrictness:
    def test_unknown_key_rejected(self):
        payload = small_campaign().to_dict()
        payload["n_scenario"] = 5  # typo'd key must not silently vanish
        with pytest.raises(SpecError, match="unknown key"):
            CampaignSpec.from_dict(payload)

    def test_missing_required_key_rejected(self):
        payload = small_campaign().to_dict()
        del payload["network"]
        with pytest.raises(SpecError, match="missing required key"):
            CampaignSpec.from_dict(payload)

    def test_version_mismatch_rejected(self):
        payload = small_campaign().to_dict()
        payload["spec_version"] = SPEC_VERSION + 1
        with pytest.raises(SpecError, match="spec_version mismatch"):
            CampaignSpec.from_dict(payload)

    def test_wrong_tag_rejected(self):
        payload = small_campaign().to_dict()
        with pytest.raises(SpecError, match="expected spec tag"):
            ChaosSpec.from_dict(payload)

    def test_unknown_tag_rejected(self):
        with pytest.raises(SpecError, match="unknown spec tag"):
            spec_from_dict({"spec": "warp_drive", "spec_version": SPEC_VERSION})

    def test_null_nested_spec_rejected_as_spec_error(self):
        """A stored payload with `"network": null` (or any non-optional
        nested field nulled) fails loud at construction, not as an
        AttributeError deep inside a run."""
        payload = small_campaign().to_dict()
        payload["network"] = None
        with pytest.raises(SpecError, match="may not be null"):
            CampaignSpec.from_dict(payload)
        payload = small_campaign(
            sampler=SamplerSpec(kind="exhaustive", n_fail=1),
            fault=FaultSpec(),
        ).to_dict()
        payload["fault"] = None
        with pytest.raises(SpecError, match="may not be null"):
            CampaignSpec.from_dict(payload)
        chaos = small_chaos().to_dict()
        chaos["processes"] = None
        with pytest.raises(SpecError, match="may not be null"):
            ChaosSpec.from_dict(chaos)
        # Optional nested fields (default None) still accept null.
        survival = SurvivalSpec(
            network=NET, p_fail=0.1, epsilon=0.5, epsilon_prime=0.1,
            method="monte_carlo",
        ).to_dict()
        assert survival["fault"] is None
        assert SurvivalSpec.from_dict(survival).fault is None

    def test_wrong_nested_type_rejected(self):
        with pytest.raises(SpecError, match="must be a NetworkRef"):
            CampaignSpec(
                network=FaultSpec(),  # type: ignore[arg-type]
                sampler=SamplerSpec(kind="fixed", distribution=(1, 1)),
            )


class TestEagerValidation:
    def test_network_ref_needs_exactly_one_source(self):
        with pytest.raises(SpecError):
            NetworkRef()
        with pytest.raises(SpecError):
            NetworkRef(path="net.npz", builder="mlp")

    def test_network_ref_validates_builder_params(self):
        with pytest.raises(SpecError, match="missing"):
            NetworkRef(builder="mlp", params={"input_dim": 2})
        with pytest.raises(SpecError, match="unknown key"):
            NetworkRef(
                builder="mlp",
                params={"input_dim": 2, "hidden": [4], "depth": 3},
            )
        with pytest.raises(SpecError, match="unknown builder"):
            NetworkRef(builder="transformer", params={})

    def test_fault_spec_taxonomy_is_closed(self):
        with pytest.raises(SpecError, match="not in taxonomy"):
            FaultSpec(kind="gamma_ray")
        with pytest.raises(SpecError, match="meaningless"):
            FaultSpec(kind="crash", value=2.0)
        with pytest.raises(SpecError, match="intermittent"):
            FaultSpec(kind="crash", inner=FaultSpec())
        with pytest.raises(SpecError, match="neuron faults"):
            FaultSpec(kind="intermittent", inner=FaultSpec(kind="synapse_crash"))

    def test_sampler_spec_cross_field_rules(self):
        with pytest.raises(SpecError, match="distribution"):
            SamplerSpec(kind="fixed")
        with pytest.raises(SpecError, match="p_fail"):
            SamplerSpec(kind="bernoulli", p_fail=1.5)
        with pytest.raises(SpecError, match="crash-only"):
            SamplerSpec(kind="exhaustive", n_fail=1, fault=FaultSpec(kind="noise"))
        with pytest.raises(SpecError, match="component"):
            SamplerSpec(kind="mixed")
        with pytest.raises(SpecError, match="its own fault"):
            SamplerSpec(
                kind="mixed",
                components=(SamplerSpec(kind="fixed", distribution=(1, 1)),),
            )

    def test_campaign_spec_exhaustive_is_crash_only(self):
        with pytest.raises(SpecError, match="exhaustive"):
            small_campaign(
                sampler=SamplerSpec(kind="exhaustive", n_fail=1),
                fault=FaultSpec(kind="byzantine"),
            )

    def test_survival_spec_validates_probability_and_budget(self):
        with pytest.raises(SpecError):
            SurvivalSpec(network=NET, p_fail=1.5, epsilon=0.5, epsilon_prime=0.1)
        with pytest.raises(SpecError):
            SurvivalSpec(network=NET, p_fail=0.1, epsilon=0.1, epsilon_prime=0.5)
        with pytest.raises(SpecError, match="monte_carlo"):
            SurvivalSpec(
                network=NET, p_fail=0.1, epsilon=0.5, epsilon_prime=0.1,
                fault=FaultSpec(),
            )

    def test_chaos_spec_closed_loop_needs_detectors(self):
        with pytest.raises(SpecError, match="closed-loop"):
            small_chaos(policy=PolicySpec(kind="repair"), detectors=())
        with pytest.raises(SpecError, match="triggers on detector"):
            small_chaos(
                policy=PolicySpec(kind="repair", detector="cusum"),
                detectors=(DetectorSpec(kind="threshold"),),
            )
        with pytest.raises(SpecError, match="unique"):
            small_chaos(
                detectors=(DetectorSpec(kind="threshold"),) * 2
            )

    def test_engine_spec_bounds(self):
        with pytest.raises(SpecError):
            EngineSpec(dtype="float16")
        with pytest.raises(SpecError):
            EngineSpec(workers=-1)
        with pytest.raises(SpecError):
            EngineSpec(chunk_size=0)

    def test_engine_backend_validated_eagerly(self):
        for name in ("numpy", "threaded", "quantized-int8", "float16"):
            assert EngineSpec(backend=name).backend == name
        with pytest.raises(SpecError, match="backend"):
            EngineSpec(backend="cuda")
        with pytest.raises(SpecError, match="backend"):
            small_campaign(engine=EngineSpec(backend="gpu"))

    def test_engine_backend_round_trips(self):
        spec = small_campaign(engine=EngineSpec(backend="threaded"))
        again = spec_from_dict(spec.to_dict())
        assert again == spec and again.engine.backend == "threaded"
        assert '"backend": "threaded"' in spec.to_json()

    def test_payload_without_backend_loads_as_numpy(self):
        """Specs stored before the backend field exist must still load
        (the field defaults, like every optional engine knob)."""
        payload = small_campaign().to_dict()
        del payload["engine"]["backend"]
        spec = spec_from_dict(payload)
        assert spec.engine.backend == "numpy"


class TestContentHash:
    def test_hash_is_stable_and_workload_sensitive(self):
        a, b = small_campaign(), small_campaign()
        assert a.content_hash() == b.content_hash()
        assert (
            small_campaign(seed=4).content_hash() != a.content_hash()
        )
        assert (
            small_campaign(fault=FaultSpec(kind="noise")).content_hash()
            != a.content_hash()
        )

    def test_hash_survives_round_trip(self, tmp_path):
        spec = small_chaos()
        path = save_spec(spec, tmp_path / "s.json")
        assert load_spec(path).content_hash() == spec.content_hash()


class TestDispatchEquivalence:
    """repro.run(spec) reproduces the legacy direct-kwargs paths bitwise."""

    def test_campaign_matches_monte_carlo_campaign(self):
        from repro.faults.campaign import _monte_carlo_campaign
        from repro.faults.injector import FaultInjector
        from repro.faults.types import NoiseFault

        spec = small_campaign(fault=FaultSpec(kind="noise", sigma=0.1))
        result = run(spec)

        network = NET.resolve()
        injector = FaultInjector(network, capacity=network.output_bound)
        x = np.random.default_rng(3).random((4, network.input_dim))
        legacy = _monte_carlo_campaign(
            injector, x, (2, 1),
            n_scenarios=60, fault=NoiseFault(sigma=0.1), seed=3,
            chunk_size=1024,
        )
        np.testing.assert_array_equal(result.errors, legacy.errors)

    def test_exhaustive_matches_legacy_sweep(self):
        from repro.faults.campaign import exhaustive_crash_campaign
        from repro.faults.injector import FaultInjector

        spec = small_campaign(
            sampler=SamplerSpec(kind="exhaustive", n_fail=1),
            fault=FaultSpec(),
        )
        result = run(spec)
        network = NET.resolve()
        injector = FaultInjector(network, capacity=network.output_bound)
        x = np.random.default_rng(3).random((4, network.input_dim))
        legacy = exhaustive_crash_campaign(
            injector, x, 1, chunk_size=1024
        )
        assert result.num_scenarios == network.num_neurons
        np.testing.assert_array_equal(result.errors, legacy.errors)

    def test_survival_certified_matches_direct_call(self):
        from repro.faults.reliability import certified_survival_probability

        spec = SurvivalSpec(
            network=NET, p_fail=0.05, epsilon=0.5, epsilon_prime=0.1
        )
        assert run(spec) == certified_survival_probability(
            NET.resolve(), 0.05, 0.5, 0.1
        )

    def test_chaos_matches_hand_built_campaign(self):
        from repro.chaos import ComponentLifetimeProcess, ThresholdDetector
        from repro.chaos.campaign import _run_chaos_campaign
        from repro.chaos.traffic import ConstantTraffic

        spec = small_chaos()
        report = run(spec)
        network = NET.resolve()
        x = np.random.default_rng(3).random((4, network.input_dim))
        legacy = _run_chaos_campaign(
            network, x, [ComponentLifetimeProcess(0.1)],
            traffic=ConstantTraffic(),
            detectors=[ThresholdDetector(0.4)],
            epochs=8, n_replicas=6, epsilon=0.5, epsilon_prime=0.1, seed=3,
        )
        assert report.to_dict() == legacy.to_dict()

    def test_run_accepts_dict_and_path(self, tmp_path):
        spec = small_campaign()
        direct = run(spec)
        from_dict = run(spec.to_dict())
        from_path = run(save_spec(spec, tmp_path / "c.json"))
        np.testing.assert_array_equal(direct.errors, from_dict.errors)
        np.testing.assert_array_equal(direct.errors, from_path.errors)

    def test_run_rejects_non_runnable_specs(self):
        with pytest.raises(SpecError, match="not a runnable spec"):
            run(FaultSpec())

    def test_survival_rejects_workers_fanout(self):
        spec = SurvivalSpec(
            network=NET, p_fail=0.05, epsilon=0.5, epsilon_prime=0.1,
            method="monte_carlo", n_trials=10, batch=4,
        )
        with pytest.raises(SpecError, match="workers fan-out"):
            run(spec, workers=4)
        # workers<=1 (the in-process values) stay accepted.
        assert run(spec, workers=1) is not None

    def test_workers_override_matches_serial(self):
        spec = small_campaign()
        serial = run(spec)
        parallel = run(spec, workers=2)
        np.testing.assert_array_equal(serial.errors, parallel.errors)

    def test_engine_reuse_matches_fresh_engine(self):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        spec = small_campaign()
        network = NET.resolve()
        injector = FaultInjector(network, capacity=network.output_bound)
        x = np.random.default_rng(3).random((4, network.input_dim))
        engine = MaskCampaignEngine(injector, x, chunk_size=1024)
        np.testing.assert_array_equal(
            run(spec).errors, run(spec, engine=engine).errors
        )


class TestDeprecationShims:
    """The direct-kwargs entry points still work, warning exactly once."""

    def _campaign_args(self):
        from repro.faults.injector import FaultInjector

        network = NET.resolve()
        injector = FaultInjector(network, capacity=network.output_bound)
        x = np.random.default_rng(0).random((4, network.input_dim))
        return injector, x

    def test_monte_carlo_campaign_warns_once(self):
        injector, x = self._campaign_args()
        reset_spec_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="repro.CampaignSpec"):
            first = repro.monte_carlo_campaign(
                injector, x, (1, 1), n_scenarios=5, seed=0
            )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = repro.monte_carlo_campaign(
                injector, x, (1, 1), n_scenarios=5, seed=0
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ], "the shim must warn once per process, not per call"
        np.testing.assert_array_equal(first.errors, second.errors)

    def test_run_chaos_campaign_warns_once(self):
        from repro.chaos import ComponentLifetimeProcess

        network = NET.resolve()
        x = np.random.default_rng(0).random((4, network.input_dim))
        kwargs = dict(
            epochs=4, n_replicas=4, epsilon=0.5, epsilon_prime=0.1, seed=0
        )
        reset_spec_deprecation_warnings()
        with pytest.warns(DeprecationWarning, match="repro.ChaosSpec"):
            first = repro.run_chaos_campaign(
                network, x, [ComponentLifetimeProcess(0.1)], **kwargs
            )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            second = repro.run_chaos_campaign(
                network, x, [ComponentLifetimeProcess(0.1)], **kwargs
            )
        assert not [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert first.to_dict() == second.to_dict()


class TestSpecKeyedArtifacts:
    """Spec-declaring experiments cache on spec hashes, not source."""

    def test_chaos_experiments_declare_their_specs(self):
        from repro.experiments import registry

        for exp_id in ("chaos_survival", "chaos_rejuvenation"):
            exp = registry.get(exp_id)
            assert exp.spec is not None, f"{exp_id} lost its declared spec"
            assert isinstance(exp.spec, ChaosSpec)
            assert exp.spec_hash() == exp.spec.content_hash()

    def test_content_key_uses_spec_hash_not_source(self):
        from dataclasses import replace

        from repro.artifacts import content_key
        from repro.experiments import registry

        exp = registry.get("chaos_survival")
        key = content_key(exp)

        # Key is a pure function of (id, spec hash, signature defaults,
        # params): two entry points with identical defaults but
        # different bodies hash identically (module refactors don't
        # invalidate) ...
        def body_a(*, periods=(5, 10), seed=11):
            return "a"

        def body_b(*, periods=(5, 10), seed=11):
            return "b"

        assert content_key(replace(exp, fn=body_a)) == content_key(
            replace(exp, fn=body_b)
        )
        # ... while changing the declared spec, or a swept default (the
        # workload parameters outside the canonical spec), invalidates.
        respecced = replace(exp, spec=exp.spec.replace(seed=exp.spec.seed + 1))
        assert content_key(respecced) != key

        def body_c(*, periods=(5, 10, 20), seed=11):
            return "a"

        assert content_key(replace(exp, fn=body_a)) != content_key(
            replace(exp, fn=body_c)
        )

    def test_spec_declared_experiment_is_cache_hit_on_rerun(self, tmp_path):
        from repro.artifacts import ArtifactStore
        from repro.experiments.registry import RegisteredExperiment
        from repro.experiments.runner import ExperimentResult

        spec = small_campaign()
        calls = []

        def entry_point():
            calls.append(1)
            result = run(spec)
            return ExperimentResult(
                experiment_id="spec_probe",
                description="spec-keyed cache probe",
                rows=[{"max_error": result.max_error}],
                shape_checks={"ran": True},
            )

        exp = RegisteredExperiment(
            experiment_id="spec_probe",
            fn=entry_point,
            title="spec-keyed cache probe",
            anchor="test",
            spec=spec,
        )
        store = ArtifactStore(tmp_path / "results")
        first = store.run(exp)
        second = store.run(exp)
        assert not first.cached and second.cached
        assert len(calls) == 1
        assert first.entry["key"] == second.entry["key"]
        assert first.entry["spec_hash"] == spec.content_hash()
