"""Backprop gradients must match finite differences for every layer
type and parameter — the correctness anchor of the training substrate."""

import numpy as np
import pytest

from repro.network import build_conv_net, build_mlp
from repro.training.backprop import (
    forward_trace,
    loss_and_gradients,
    numerical_gradients,
)
from repro.training.losses import MSELoss


def assert_gradients_match(network, rng, atol=1e-6):
    x = rng.random((5, network.input_dim))
    y = rng.random((5, network.n_outputs))
    loss = MSELoss()
    _, analytic = loss_and_gradients(network, x, y, loss)
    numeric = numerical_gradients(network, x, y, loss)
    assert set(analytic) == set(numeric)
    for name in numeric:
        np.testing.assert_allclose(
            analytic[name], numeric[name], atol=atol, rtol=1e-4,
            err_msg=f"gradient mismatch for {name}",
        )


class TestGradientsVsFiniteDifferences:
    def test_dense_single_layer(self, rng):
        net = build_mlp(3, [5], activation={"name": "sigmoid", "k": 1.0}, seed=0)
        assert_gradients_match(net, rng)

    def test_dense_deep(self, rng):
        net = build_mlp(2, [4, 4, 3], activation={"name": "tanh", "k": 0.8}, seed=1)
        assert_gradients_match(net, rng)

    def test_dense_no_bias(self, rng):
        net = build_mlp(2, [4], use_bias=False, seed=2)
        assert_gradients_match(net, rng)

    def test_conv_network(self, rng):
        net = build_conv_net(8, [3], activation={"name": "sigmoid", "k": 1.0}, seed=3)
        assert_gradients_match(net, rng)

    def test_conv_stack(self, rng):
        net = build_conv_net(10, [3, 2], seed=4)
        assert_gradients_match(net, rng)

    def test_multi_output(self, rng):
        net = build_mlp(2, [4], n_outputs=3, seed=5)
        assert_gradients_match(net, rng)


class TestForwardTrace:
    def test_trace_consistency(self, small_net, batch):
        out, inputs, pres = forward_trace(small_net, batch)
        np.testing.assert_allclose(out, small_net.forward(batch))
        assert len(inputs) == small_net.depth + 1
        assert len(pres) == small_net.depth
        # inputs[-1] is what the output node consumed = last activations.
        np.testing.assert_allclose(
            inputs[-1], small_net.hidden_outputs(batch)[-1]
        )

    def test_loss_value_reported(self, small_net, batch, rng):
        y = rng.random((32, 1))
        value, _ = loss_and_gradients(small_net, batch, y, MSELoss())
        assert value == pytest.approx(
            MSELoss().value(small_net.forward(batch), y)
        )


class TestTrainingReducesLoss:
    def test_one_sgd_step_descends(self, rng):
        from repro.training.optimizers import SGD

        net = build_mlp(2, [6], seed=6)
        x = rng.random((64, 2))
        y = rng.random((64, 1))
        loss = MSELoss()
        before, grads = loss_and_gradients(net, x, y, loss)
        SGD(lr=0.05).step(net.parameters(), grads)
        after = loss.value(net.forward(x), y)
        assert after < before
