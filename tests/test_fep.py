"""Unit tests for the Forward Error Propagation computations (Theorem 2,
4, 5 formulas) — the heart of the reproduction."""

import numpy as np
import pytest

from repro.core.fep import (
    fep_many,
    fep_terms,
    forward_error_propagation,
    network_fep,
    network_fep_terms,
    network_precision_bound,
    network_synapse_fep,
    precision_error_bound,
    synapse_fep,
)
from repro.network import build_mlp


class TestSingleLayerFep:
    """L=1 closed forms: Fep = C * f1 * w_m^(2)."""

    def test_matches_theorem1_shape(self):
        assert forward_error_propagation([3], [10], [0.5, 0.2], 1.0, 1.0) == (
            pytest.approx(3 * 0.2)
        )

    def test_input_weights_never_enter(self):
        a = forward_error_propagation([2], [5], [9.9, 0.3], 1.0, 1.0)
        b = forward_error_propagation([2], [5], [0.0, 0.3], 1.0, 1.0)
        assert a == b

    def test_linear_in_capacity(self):
        base = forward_error_propagation([2], [5], [1, 0.3], 1.0, 1.0)
        assert forward_error_propagation([2], [5], [1, 0.3], 1.0, 2.5) == (
            pytest.approx(2.5 * base)
        )

    def test_k_does_not_enter_single_layer(self):
        # K^(L-l) = K^0 = 1 for the only layer.
        a = forward_error_propagation([2], [5], [1, 0.3], 0.25, 1.0)
        b = forward_error_propagation([2], [5], [1, 0.3], 4.0, 1.0)
        assert a == b


class TestMultilayerFep:
    def test_two_layer_hand_computation(self):
        # L=2, f=(1,1), N=(3,4), w=(w1,w2,w3), K=2, C=1:
        # term1 = 1*K^1*(N2-f2)*w2*(1)*w3 = 2*3*w2*w3
        # term2 = 1*K^0*1*w3 = w3
        w2, w3 = 0.5, 0.25
        got = forward_error_propagation([1, 1], [3, 4], [9, w2, w3], 2.0, 1.0)
        assert got == pytest.approx(2 * 3 * w2 * w3 + w3)

    def test_terms_sum_to_total(self):
        terms = fep_terms([2, 1, 1], [5, 4, 3], [1, 0.5, 0.4, 0.3], 1.5, 2.0)
        total = forward_error_propagation(
            [2, 1, 1], [5, 4, 3], [1, 0.5, 0.4, 0.3], 1.5, 2.0
        )
        assert terms.shape == (3,)
        assert terms.sum() == pytest.approx(total)

    def test_depth_amplification_for_k_above_one(self):
        # Same single failure placed deeper vs shallower: with K>1 the
        # shallower failure (more squashings ahead) costs more when the
        # fan-in products exceed 1... use all-ones to isolate K^(L-l).
        w = [1.0, 1.0, 1.0, 1.0]
        n = [1, 1, 1]
        early = forward_error_propagation([1, 0, 0], n, w, 2.0, 1.0)
        late = forward_error_propagation([0, 0, 1], n, w, 2.0, 1.0)
        assert early == pytest.approx(4.0)  # K^2
        assert late == pytest.approx(1.0)  # K^0

    def test_failed_neurons_stop_amplifying(self):
        # Increasing f2 reduces the (N2 - f2) multiplier on layer-1 terms.
        lo = forward_error_propagation([1, 0], [3, 4], [1, 0.5, 0.5], 1.0, 1.0)
        hi_f2 = forward_error_propagation([1, 3], [3, 4], [1, 0.5, 0.5], 1.0, 1.0)
        term1_lo = fep_terms([1, 0], [3, 4], [1, 0.5, 0.5], 1.0, 1.0)[0]
        term1_hi = fep_terms([1, 3], [3, 4], [1, 0.5, 0.5], 1.0, 1.0)[0]
        assert term1_hi < term1_lo
        assert lo != hi_f2

    def test_zero_failures_zero_fep(self):
        assert forward_error_propagation([0, 0], [3, 3], [1, 1, 1], 1.0, 1.0) == 0.0

    def test_monotone_in_k_when_failures_shallow(self):
        vals = [
            forward_error_propagation([1, 0], [4, 4], [1, 0.5, 0.5], k, 1.0)
            for k in (0.25, 0.5, 1.0, 2.0)
        ]
        assert all(a < b for a, b in zip(vals, vals[1:]))


class TestValidation:
    def test_wrong_lengths(self):
        with pytest.raises(ValueError):
            forward_error_propagation([1], [3, 3], [1, 1, 1], 1.0, 1.0)
        with pytest.raises(ValueError, match="weight_maxes"):
            forward_error_propagation([1, 1], [3, 3], [1, 1], 1.0, 1.0)

    def test_failures_exceeding_sizes(self):
        with pytest.raises(ValueError, match="exceed"):
            forward_error_propagation([4], [3], [1, 1], 1.0, 1.0)

    def test_negative_failures(self):
        with pytest.raises(ValueError):
            forward_error_propagation([-1], [3], [1, 1], 1.0, 1.0)

    def test_bad_k_and_capacity(self):
        with pytest.raises(ValueError):
            forward_error_propagation([1], [3], [1, 1], 0.0, 1.0)
        with pytest.raises(ValueError):
            forward_error_propagation([1], [3], [1, 1], 1.0, 0.0)
        with pytest.raises(ValueError, match="Lemma 1"):
            forward_error_propagation([1], [3], [1, 1], 1.0, np.inf)


class TestFepMany:
    def test_agrees_with_scalar(self, rng):
        sizes, w, k, c = [5, 4, 3], [1, 0.5, 0.4, 0.3], 1.2, 1.5
        F = np.stack(
            [rng.integers(0, n, size=8) for n in sizes], axis=1
        ).astype(float)
        batch = fep_many(F, sizes, w, k, c)
        for row, expected in zip(F, batch):
            assert forward_error_propagation(row, sizes, w, k, c) == (
                pytest.approx(expected)
            )

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            fep_many(np.zeros(3), [3], [1, 1], 1.0, 1.0)


class TestNetworkWrappers:
    def test_crash_mode_uses_activation_sup(self, small_net):
        crash = network_fep(small_net, (1, 1), mode="crash")
        byz = network_fep(small_net, (1, 1), capacity=1.0, mode="byzantine")
        assert crash == pytest.approx(byz)  # sigmoid sup = 1 = C

    def test_byzantine_requires_capacity(self, small_net):
        with pytest.raises(ValueError, match="Lemma 1"):
            network_fep(small_net, (1, 1), mode="byzantine")

    def test_crash_mode_rejects_unbounded_activation(self):
        net = build_mlp(2, [4], activation="relu", seed=0)
        with pytest.raises(ValueError, match="bounded activation"):
            network_fep(net, (1,), mode="crash")

    def test_unknown_mode(self, small_net):
        with pytest.raises(ValueError, match="mode"):
            network_fep(small_net, (1, 1), mode="chaotic")

    def test_terms_match_total(self, small_net):
        terms = network_fep_terms(small_net, (2, 1), mode="crash")
        assert terms.sum() == pytest.approx(network_fep(small_net, (2, 1), mode="crash"))


class TestSynapseFep:
    def test_output_stage_term(self):
        # One faulty synapse into the output node: C * w_m^(L+1).
        got = synapse_fep([0, 0, 1], [3, 2], [0.5, 0.4, 0.3], 2.0, 1.5)
        assert got == pytest.approx(1.5 * 0.3)

    def test_stage1_hand_computation(self):
        # L=1, one synapse into layer 1: only ONE neuron's emission is
        # corrupted, so the bound is C * K * w1 * (N_{L+1}=1) * w2 —
        # the deviation C enters through weight w1, squashes once (K),
        # and reaches the output through that neuron's w2.
        got = synapse_fep([1, 0], [4], [0.5, 0.25], 2.0, 1.0)
        assert got == pytest.approx(1.0 * 2.0 * 0.5 * 1 * 0.25)

    def test_length_validation(self):
        with pytest.raises(ValueError):
            synapse_fep([1, 0], [3, 2], [1, 1, 1], 1.0, 1.0)

    def test_network_wrapper(self, small_net):
        v = network_synapse_fep(small_net, (1, 0, 0), capacity=1.0)
        assert v > 0


class TestPrecisionBound:
    def test_single_layer_hand_computation(self):
        # L=1: lambda * N1 * w2.
        got = precision_error_bound([0.1], [5], [1.0, 0.2], 3.0)
        assert got == pytest.approx(0.1 * 5 * 0.2)

    def test_two_layer_hand_computation(self):
        # term1 = K * l1 * (N1 w2)(N2 w3); term2 = l2 * N2 w3.
        got = precision_error_bound([0.1, 0.2], [3, 4], [9, 0.5, 0.25], 2.0)
        assert got == pytest.approx(2 * 0.1 * (3 * 0.5) * (4 * 0.25) + 0.2 * 4 * 0.25)

    def test_zero_lambdas(self):
        assert precision_error_bound([0, 0], [3, 3], [1, 1, 1], 1.0) == 0.0

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            precision_error_bound([-0.1], [3], [1, 1], 1.0)

    def test_network_wrapper_positive(self, small_net):
        assert network_precision_bound(small_net, (0.01, 0.01)) > 0
