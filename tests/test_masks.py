"""Unit tests for the mask-native campaign engine.

Covers the DESIGN.md three-engine equivalence contract: the mask
engine must agree with the object-path ``compile_batch`` lowering, the
scalar injector, and the process-grained simulator on identical
scenarios — plus the statistical contract of the samplers and the
float32 fast path's tolerance.
"""

import itertools

import numpy as np
import pytest

from repro.distributed.simulator import DistributedNetwork
from repro.faults.campaign import (
    exhaustive_crash_campaign,
    monte_carlo_campaign,
    run_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    BernoulliSampler,
    FixedDistributionSampler,
    FixedSynapseDistributionSampler,
    MaskCampaignEngine,
    MixedFaultSampler,
    SynapseBernoulliSampler,
    combination_index_array,
    masks_from_flat_indices,
    merge_mask_batches,
    sampled_campaign_errors,
)
from repro.faults.scenarios import (
    exhaustive_crash_scenarios,
    random_failure_scenario,
    random_synapse_scenario,
)
from repro.faults.types import (
    ByzantineFault,
    CrashFault,
    IntermittentFault,
    NoiseFault,
    OffsetFault,
    StuckAtFault,
)
from repro.network import build_mlp


@pytest.fixture
def injector(small_net):
    return FaultInjector(small_net, capacity=1.0)


# ---------------------------------------------------------------------------
# Engine equivalence (the DESIGN.md contract)
# ---------------------------------------------------------------------------


class TestEngineEquivalence:
    @pytest.mark.parametrize(
        "fault",
        [
            CrashFault(),
            ByzantineFault(),            # capacity-saturating sentinel
            ByzantineFault(value=0.7),   # value-pulling
            StuckAtFault(value=0.9),
            OffsetFault(offset=0.3),
        ],
    )
    def test_matches_compiled_object_path(self, small_net, injector, batch, rng, fault):
        scenarios = [
            random_failure_scenario(small_net, (2, 1), fault=fault, rng=rng)
            for _ in range(24)
        ]
        compiled = injector.compile_batch(scenarios)
        engine = MaskCampaignEngine(injector, batch, chunk_size=7)
        np.testing.assert_allclose(
            engine.evaluate(compiled),
            injector.output_errors_many(batch, compiled),
            rtol=1e-12,
            atol=1e-14,
        )

    def test_matches_scalar_injector(self, small_net, injector, batch, rng):
        scenarios = [
            random_failure_scenario(small_net, (3, 2), rng=rng) for _ in range(10)
        ]
        compiled = injector.compile_batch(scenarios)
        engine = MaskCampaignEngine(injector, batch)
        scalar = np.array([injector.output_error(batch, sc) for sc in scenarios])
        np.testing.assert_allclose(engine.evaluate(compiled), scalar, rtol=1e-12)

    def test_matches_simulator_reference(self, small_net, injector, rng):
        x = rng.random((4, small_net.input_dim))
        scenario = random_failure_scenario(small_net, (2, 1), rng=rng)
        compiled = injector.compile_batch([scenario])
        engine = MaskCampaignEngine(injector, x)
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(scenario)
        np.testing.assert_allclose(
            engine.outputs(compiled)[0], sim.run_batch(x), rtol=1e-9
        )

    def test_chunking_invariance(self, injector, batch, rng):
        scenarios = [
            random_failure_scenario(injector.network, (2, 2), rng=rng)
            for _ in range(20)
        ]
        compiled = injector.compile_batch(scenarios)
        a = MaskCampaignEngine(injector, batch, chunk_size=3).evaluate(compiled)
        b = MaskCampaignEngine(injector, batch, chunk_size=64).evaluate(compiled)
        np.testing.assert_array_equal(a, b)

    def test_float32_fast_path_tolerance(self, injector, batch, rng):
        scenarios = [
            random_failure_scenario(injector.network, (2, 1), rng=rng)
            for _ in range(32)
        ]
        compiled = injector.compile_batch(scenarios)
        e64 = MaskCampaignEngine(injector, batch, dtype=np.float64).evaluate(compiled)
        e32 = MaskCampaignEngine(injector, batch, dtype="float32").evaluate(compiled)
        assert e64.dtype == np.float64
        np.testing.assert_allclose(e32, e64, atol=1e-5)
        with pytest.raises(ValueError, match="float32 or float64"):
            MaskCampaignEngine(injector, batch, dtype=np.int32)

    def test_mean_reduction(self, injector, batch, rng):
        scenarios = [
            random_failure_scenario(injector.network, (2, 0), rng=rng)
            for _ in range(8)
        ]
        compiled = injector.compile_batch(scenarios)
        engine = MaskCampaignEngine(injector, batch, reduction="mean")
        np.testing.assert_allclose(
            engine.evaluate(compiled),
            injector.output_errors_many(batch, compiled, reduction="mean"),
            rtol=1e-12,
        )

    @pytest.mark.parametrize(
        "fault", [ByzantineFault(), OffsetFault(offset=10.0)]
    )
    def test_sampler_batches_work_on_injector_run_many(
        self, small_net, batch, rng, fault
    ):
        """Sampler batches carry unresolved add-channel sentinels /
        unclipped offsets; run_many must resolve them like the engine."""
        inj = FaultInjector(small_net, capacity=0.3)
        sampler = FixedDistributionSampler(small_net, (2, 1), fault=fault)
        compiled = sampler.sample(12, rng)
        via_injector = inj.output_errors_many(batch, compiled)
        via_engine = MaskCampaignEngine(inj, batch).evaluate(compiled)
        assert np.all(np.isfinite(via_injector))
        np.testing.assert_allclose(via_injector, via_engine, rtol=1e-12)

    def test_unbounded_capacity_rejects_sentinels(self, small_net, batch, rng):
        inj = FaultInjector(small_net, capacity=None)
        sampler = FixedDistributionSampler(small_net, (1, 0), fault=ByzantineFault())
        compiled = sampler.sample(4, rng)
        with pytest.raises(ValueError, match="unbounded"):
            MaskCampaignEngine(inj, batch).evaluate(compiled)

    def test_empty_batch(self, injector, batch):
        compiled = injector.compile_batch([])
        engine = MaskCampaignEngine(injector, batch)
        assert engine.evaluate(compiled).shape == (0,)
        assert engine.outputs(compiled).shape[0] == 0


# ---------------------------------------------------------------------------
# Samplers
# ---------------------------------------------------------------------------


class TestSamplers:
    def test_fixed_counts_exact(self, small_net, rng):
        sampler = FixedDistributionSampler(small_net, (3, 2))
        batch = sampler.sample(200, rng)
        np.testing.assert_array_equal(batch.zero_masks[0].sum(axis=1), 3)
        np.testing.assert_array_equal(batch.zero_masks[1].sum(axis=1), 2)
        assert not batch.set_masks[0].any() and not batch.add_masks[0].any()

    def test_marginals_match_object_sampler(self, small_net, rng):
        """Each neuron of layer l is hit with probability f_l / N_l —
        the same per-layer distribution as random_failure_scenario."""
        S = 4000
        dist = (3, 2)
        sampler = FixedDistributionSampler(small_net, dist)
        batch = sampler.sample(S, rng)
        obj_counts = [np.zeros(n) for n in small_net.layer_sizes]
        for _ in range(S):
            sc = random_failure_scenario(small_net, dist, rng=rng)
            for addr in sc.neuron_faults:
                obj_counts[addr.layer - 1][addr.index] += 1
        for l0, (n, f) in enumerate(zip(small_net.layer_sizes, dist)):
            p = f / n
            sigma = np.sqrt(p * (1 - p) / S)
            mask_freq = batch.zero_masks[l0].mean(axis=0)
            obj_freq = obj_counts[l0] / S
            assert np.all(np.abs(mask_freq - p) < 6 * sigma)
            assert np.all(np.abs(obj_freq - p) < 6 * sigma)

    def test_full_layer_and_zero_counts(self, small_net, rng):
        sizes = small_net.layer_sizes
        batch = FixedDistributionSampler(small_net, (sizes[0], 0)).sample(5, rng)
        assert batch.zero_masks[0].all()
        assert not batch.zero_masks[1].any()

    def test_byzantine_channel_routing(self, small_net, rng):
        batch = FixedDistributionSampler(
            small_net, (2, 0), fault=StuckAtFault(value=0.4)
        ).sample(6, rng)
        assert not batch.zero_masks[0].any()
        np.testing.assert_array_equal(batch.set_masks[0].sum(axis=1), 2)
        assert np.all(batch.set_values[0][batch.set_masks[0]] == 0.4)

    def test_bernoulli_rates(self, small_net, rng):
        sampler = BernoulliSampler(small_net, 0.3)
        batch = sampler.sample(3000, rng)
        for mask in batch.zero_masks:
            assert abs(mask.mean() - 0.3) < 0.02

    def test_stochastic_faults_fill_their_channels(self, small_net, rng):
        batch = FixedDistributionSampler(
            small_net, (2, 1), fault=NoiseFault(sigma=0.3)
        ).sample(6, rng)
        assert batch.is_stochastic
        np.testing.assert_array_equal(batch.noise_masks[0].sum(axis=1), 2)
        assert np.all(batch.noise_sigma[0][batch.noise_masks[0]] == 0.3)
        gated = FixedDistributionSampler(
            small_net, (1, 1), fault=IntermittentFault(p=0.25)
        ).sample(6, rng)
        assert gated.is_stochastic
        assert np.all(gated.gate_p[0][gated.zero_masks[0]] == 0.25)
        assert np.all(gated.gate_p[0][~gated.zero_masks[0]] == 1.0)

    def test_rejects_bad_args(self, small_net):
        from repro.faults.types import SynapseCrashFault

        with pytest.raises(ValueError, match="synapse"):
            FixedDistributionSampler(
                small_net, (1, 0), fault=SynapseCrashFault()
            )
        with pytest.raises(ValueError, match="length"):
            FixedDistributionSampler(small_net, (1,))
        with pytest.raises(ValueError):
            FixedDistributionSampler(small_net, (100, 0))
        with pytest.raises(ValueError):
            BernoulliSampler(small_net, 1.5)


# ---------------------------------------------------------------------------
# Exhaustive compilation
# ---------------------------------------------------------------------------


class TestExhaustiveCompilation:
    @pytest.mark.parametrize("n,k", [(6, 0), (6, 1), (6, 3), (6, 6), (3, 5)])
    def test_combination_index_array(self, n, k):
        combos = list(itertools.combinations(range(n), k))
        expected = np.array(combos, dtype=np.intp).reshape(len(combos), k)
        np.testing.assert_array_equal(combination_index_array(n, k), expected)

    def test_masks_from_flat_indices_round_trip(self, small_net):
        flat = np.array([[0, 8], [1, 13], [7, 9]])  # spans both layers
        batch = masks_from_flat_indices(small_net.layer_sizes, flat)
        for s, pair in enumerate(flat):
            for idx in pair:
                addr = small_net.address_of(int(idx))
                assert batch.zero_masks[addr.layer - 1][s, addr.index]
        assert batch.zero_masks[0].sum() + batch.zero_masks[1].sum() == flat.size

    def test_flat_indices_validation(self, small_net):
        with pytest.raises(ValueError, match="outside"):
            masks_from_flat_indices(small_net.layer_sizes, np.array([[99]]))
        with pytest.raises(ValueError, match="2-D"):
            masks_from_flat_indices(small_net.layer_sizes, np.array([1, 2]))

    def test_exhaustive_errors_guard_materialisation(self, injector, batch):
        from repro.faults.masks import exhaustive_crash_errors

        with pytest.raises(ValueError, match="configurations"):
            exhaustive_crash_errors(
                injector, batch, 7, max_configurations=100
            )

    def test_exhaustive_campaign_matches_object_path(self, injector, batch):
        new = exhaustive_crash_campaign(injector, batch, 2, chunk_size=16)
        old = run_campaign(
            injector,
            batch,
            exhaustive_crash_scenarios(injector.network, 2),
            keep_names=False,
        )
        np.testing.assert_allclose(new.errors, old.errors, rtol=1e-12)


# ---------------------------------------------------------------------------
# Campaign-level behaviour
# ---------------------------------------------------------------------------


class TestSampledCampaigns:
    def test_serial_matches_parallel(self, injector, batch):
        sampler = FixedDistributionSampler(injector.network, (2, 1))
        serial = sampled_campaign_errors(
            injector, batch, sampler, 120, seed=7, chunk_size=32
        )
        parallel = sampled_campaign_errors(
            injector, batch, sampler, 120, seed=7, chunk_size=32, n_workers=2
        )
        np.testing.assert_array_equal(serial, parallel)

    def test_chunk_size_does_not_change_draws(self, injector, batch):
        sampler = FixedDistributionSampler(injector.network, (2, 1))
        a = sampled_campaign_errors(injector, batch, sampler, 50, seed=3, chunk_size=8)
        b = sampled_campaign_errors(injector, batch, sampler, 50, seed=3, chunk_size=50)
        np.testing.assert_array_equal(a, b)

    def test_monte_carlo_routes_static_faults_to_masks(self, injector, batch):
        result = monte_carlo_campaign(
            injector, batch, (2, 1), n_scenarios=30, seed=1, dtype="float32"
        )
        assert result.num_scenarios == 30
        assert result.scenario_names == []  # mask path carries no names

    def test_monte_carlo_stochastic_runs_on_mask_engine(self, injector, batch):
        """Stochastic fault models no longer fall back to the ~25x
        slower object path: they sample mask channels like everything
        else (and therefore carry no per-scenario names)."""
        result = monte_carlo_campaign(
            injector, batch, (1, 0), n_scenarios=4, seed=1,
            fault=NoiseFault(sigma=0.05),
        )
        assert result.num_scenarios == 4
        assert result.scenario_names == []
        assert result.max_error > 0

    def test_stochastic_chunks_draw_independent_noise(self, injector, batch):
        """Regression: the seed-era scalar fallback used a fixed rng(0)
        per chunk, replaying identical noise in every chunk."""
        result = monte_carlo_campaign(
            injector, batch, (1, 1), n_scenarios=8, seed=0, chunk_size=1,
            fault=NoiseFault(sigma=0.5),
        )
        assert np.unique(result.errors).size == result.errors.size

    def test_monte_carlo_synapse_distribution(self, injector, batch):
        from repro.faults.types import SynapseByzantineFault

        result = monte_carlo_campaign(
            injector, batch, (2, 1, 1), n_scenarios=16, seed=3,
            fault=SynapseByzantineFault(),
        )
        assert result.num_scenarios == 16
        assert np.all(np.isfinite(result.errors))
        assert result.max_error > 0

    def test_sampler_network_mismatch_rejected(self, injector, batch):
        other = build_mlp(3, [4, 4], seed=9)
        sampler = FixedDistributionSampler(other, (1, 1))
        with pytest.raises(ValueError, match="layer sizes"):
            sampled_campaign_errors(injector, batch, sampler, 10)

    def test_engine_reuse_guard_compares_probes_in_float64(
        self, injector, batch
    ):
        """Regression: the probe-batch guard used to cast to the engine
        dtype first, so two distinct float64 batches colliding at
        float32 slipped past on a float32 engine."""
        engine = MaskCampaignEngine(injector, batch, dtype="float32")
        # One float64 ulp away: == batch at float32, != at float64.
        other = np.nextafter(batch, np.inf)
        assert np.array_equal(
            other.astype(np.float32), batch.astype(np.float32)
        )
        sampler = FixedDistributionSampler(injector.network, (1, 1))
        with pytest.raises(ValueError, match="different probe batch"):
            sampled_campaign_errors(
                injector, other, sampler, 8, seed=0, engine=engine
            )
        # The true probe batch still passes.
        errs = sampled_campaign_errors(
            injector, batch, sampler, 8, seed=0, engine=engine
        )
        assert errs.shape == (8,)


# ---------------------------------------------------------------------------
# Full fault-taxonomy coverage (stochastic + synapse channels)
# ---------------------------------------------------------------------------


def _scalar_errors(injector, x, scenarios, seed=1234):
    rng = np.random.default_rng(seed)
    return np.array(
        [injector.output_error(x, sc, rng=rng) for sc in scenarios]
    )


class TestTaxonomyEquivalence:
    """Satellite: statistical-equivalence suite between the scalar
    injector and the new mask channels, for every fault kind."""

    from repro.faults.types import (  # noqa: PLC0415 - parametrization aid
        SignFlipFault,
        SynapseByzantineFault,
        SynapseCrashFault,
        SynapseNoiseFault,
    )

    def test_sign_flip_matches_scalar_exactly(self, small_net, injector,
                                              batch, rng):
        scenarios = [
            random_failure_scenario(
                small_net, (2, 1), fault=self.SignFlipFault(), rng=rng
            )
            for _ in range(20)
        ]
        compiled = injector.compile_batch(scenarios)
        engine = MaskCampaignEngine(injector, batch, chunk_size=7)
        np.testing.assert_allclose(
            engine.evaluate(compiled), _scalar_errors(injector, batch, scenarios),
            rtol=1e-10,
        )

    @pytest.mark.parametrize(
        "fault",
        [SynapseCrashFault(), SynapseByzantineFault(),
         SynapseByzantineFault(offset=0.4, sign=-1)],
    )
    def test_deterministic_synapse_faults_match_scalar_exactly(
        self, small_net, injector, batch, rng, fault
    ):
        scenarios = [
            random_synapse_scenario(small_net, (2, 1, 1), fault=fault, rng=rng)
            for _ in range(16)
        ]
        compiled = injector.compile_batch(scenarios)
        engine = MaskCampaignEngine(injector, batch, chunk_size=5)
        scalar = _scalar_errors(injector, batch, scenarios)
        np.testing.assert_allclose(engine.evaluate(compiled), scalar, rtol=1e-9)
        np.testing.assert_allclose(
            injector.output_errors_many(batch, compiled), scalar, rtol=1e-9
        )

    @staticmethod
    def _assert_statistically_equivalent(scalar, mask):
        from scipy import stats as sps

        ks = sps.ks_2samp(scalar, mask)
        assert ks.pvalue > 1e-3, (
            f"KS test rejects equivalence (p={ks.pvalue:.2e}): "
            f"scalar mean {scalar.mean():.4f} vs mask mean {mask.mean():.4f}"
        )
        spread = max(scalar.std(), 1e-6)
        assert abs(scalar.mean() - mask.mean()) < 0.25 * spread
        for q in (0.25, 0.5, 0.75):
            assert abs(
                np.quantile(scalar, q) - np.quantile(mask, q)
            ) < 0.35 * spread

    @pytest.mark.parametrize(
        "fault",
        [
            NoiseFault(sigma=0.3),
            IntermittentFault(p=0.4),
            IntermittentFault(p=0.6, fault=ByzantineFault(value=0.9)),
            IntermittentFault(p=0.5, fault=NoiseFault(sigma=0.4)),
        ],
    )
    def test_stochastic_neuron_faults_match_scalar_statistically(
        self, small_net, injector, batch, rng, fault
    ):
        S = 400
        scenarios = [
            random_failure_scenario(small_net, (2, 1), fault=fault, rng=rng)
            for _ in range(S)
        ]
        compiled = injector.compile_batch(scenarios)
        assert compiled.is_stochastic
        engine = MaskCampaignEngine(injector, batch)
        scalar = _scalar_errors(injector, batch, scenarios, seed=11)
        mask = engine.evaluate(compiled, rng=np.random.default_rng(12))
        self._assert_statistically_equivalent(scalar, mask)

    def test_synapse_noise_matches_scalar_statistically(
        self, small_net, injector, batch, rng
    ):
        S = 400
        scenarios = [
            random_synapse_scenario(
                small_net, (3, 2, 1), fault=self.SynapseNoiseFault(sigma=0.4),
                rng=rng,
            )
            for _ in range(S)
        ]
        compiled = injector.compile_batch(scenarios)
        assert compiled.is_stochastic
        engine = MaskCampaignEngine(injector, batch)
        scalar = _scalar_errors(injector, batch, scenarios, seed=21)
        mask = engine.evaluate(compiled, rng=np.random.default_rng(22))
        self._assert_statistically_equivalent(scalar, mask)

    def test_stochastic_sampler_matches_scalar_statistically(
        self, small_net, injector, batch
    ):
        """Sampler-native stochastic campaigns (no scenario objects at
        all) draw from the same per-layer distribution as the scalar
        twin."""
        fault = NoiseFault(sigma=0.25)
        sampler = FixedDistributionSampler(small_net, (2, 1), fault=fault)
        mask = sampled_campaign_errors(
            injector, batch, sampler, 400, seed=5
        )
        rng = np.random.default_rng(6)
        scenarios = [
            random_failure_scenario(small_net, (2, 1), fault=fault, rng=rng)
            for _ in range(400)
        ]
        scalar = _scalar_errors(injector, batch, scenarios, seed=7)
        self._assert_statistically_equivalent(scalar, mask)

    def test_intermittent_crash_emits_exact_zero_on_hit(self, small_net, batch):
        """Scalar-path bugfix: an intermittent *crash* is a crash where
        it hits (exactly 0 — Definition 2), not a Byzantine value whose
        deviation is clipped to the capacity."""
        from repro.faults.injector import apply_neuron_fault
        from repro.faults.types import IntermittentFault

        nominal = np.full(2000, 5.0)
        out = apply_neuron_fault(
            IntermittentFault(p=0.5), nominal, capacity=0.5,
            rng=np.random.default_rng(0),
        )
        hit = out != 5.0
        assert 0.4 < hit.mean() < 0.6
        np.testing.assert_array_equal(out[hit], 0.0)  # not 4.5

    def test_stochastic_serial_matches_parallel(self, injector, batch):
        sampler = FixedDistributionSampler(
            injector.network, (2, 1), fault=NoiseFault(sigma=0.3)
        )
        serial = sampled_campaign_errors(
            injector, batch, sampler, 96, seed=7, chunk_size=32
        )
        parallel = sampled_campaign_errors(
            injector, batch, sampler, 96, seed=7, chunk_size=32, n_workers=2
        )
        np.testing.assert_array_equal(serial, parallel)

    def test_synapse_sampler_serial_matches_parallel(self, injector, batch):
        from repro.faults.types import SynapseNoiseFault

        sampler = SynapseBernoulliSampler(
            injector.network, 0.05, fault=SynapseNoiseFault(sigma=0.2)
        )
        serial = sampled_campaign_errors(
            injector, batch, sampler, 96, seed=9, chunk_size=32
        )
        parallel = sampled_campaign_errors(
            injector, batch, sampler, 96, seed=9, chunk_size=32, n_workers=2
        )
        np.testing.assert_array_equal(serial, parallel)

    def test_stochastic_campaign_reproducible_by_seed(self, injector, batch):
        sampler = BernoulliSampler(
            injector.network, 0.2, fault=NoiseFault(sigma=0.3)
        )
        a = sampled_campaign_errors(injector, batch, sampler, 64, seed=3)
        b = sampled_campaign_errors(injector, batch, sampler, 64, seed=3)
        c = sampled_campaign_errors(injector, batch, sampler, 64, seed=4)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_unseeded_stochastic_evaluation_warns_once(
        self, injector, batch, rng, monkeypatch
    ):
        import repro.faults.types as types_mod
        from repro.faults.types import UnseededFaultWarning

        monkeypatch.setattr(types_mod, "_unseeded_warned", False)
        sampler = FixedDistributionSampler(
            injector.network, (1, 0), fault=NoiseFault(sigma=0.2)
        )
        compiled = sampler.sample(4, rng)
        engine = MaskCampaignEngine(injector, batch)
        with pytest.warns(UnseededFaultWarning):
            engine.evaluate(compiled)


class TestSynapseSamplers:
    def test_fixed_counts_exact(self, small_net, rng):
        sampler = FixedSynapseDistributionSampler(small_net, (3, 2, 1))
        batch = sampler.sample(50, rng)
        stages = batch.synapse_stages
        assert [np.bincount(st.add_s, minlength=50).tolist()
                for st in stages] == [[3] * 50, [2] * 50, [1] * 50]

    def test_counts_validated_against_physical_synapses(self, small_net):
        with pytest.raises(ValueError, match="synapse counts"):
            FixedSynapseDistributionSampler(small_net, (10_000, 0, 0))
        with pytest.raises(ValueError, match="L\\+1"):
            FixedSynapseDistributionSampler(small_net, (1, 1))

    def test_bernoulli_rates(self, small_net, rng):
        sampler = SynapseBernoulliSampler(small_net, 0.3)
        batch = sampler.sample(2000, rng)
        for st, n_phys in zip(
            batch.synapse_stages, sampler.stage_synapse_counts
        ):
            rate = st.add_s.size / (2000 * n_phys)
            assert abs(rate - 0.3) < 0.03

    def test_rejects_neuron_faults(self, small_net):
        with pytest.raises(ValueError, match="weight-level"):
            SynapseBernoulliSampler(small_net, 0.1, fault=CrashFault())

    def test_network_identity_checked_beyond_layer_sizes(
        self, small_net, injector, batch
    ):
        """Regression: two networks with identical layer sizes can
        differ in input_dim — the sampler's COO synapse tables would
        then scatter into the wrong (or non-existent) weights."""
        other = build_mlp(5, list(small_net.layer_sizes), seed=4)
        assert other.layer_sizes == small_net.layer_sizes
        sampler = SynapseBernoulliSampler(other, 0.1)
        with pytest.raises(ValueError, match="input_dim"):
            sampled_campaign_errors(injector, batch, sampler, 8)
        # Mixed samplers delegate the check to their components.
        mixed = MixedFaultSampler([sampler])
        with pytest.raises(ValueError, match="input_dim"):
            sampled_campaign_errors(injector, batch, mixed, 8)


class TestMixedFaultSampler:
    def test_union_of_components(self, small_net, rng):
        from repro.faults.types import SynapseNoiseFault

        mixed = MixedFaultSampler(
            [
                FixedDistributionSampler(small_net, (2, 0)),
                FixedDistributionSampler(
                    small_net, (0, 1), fault=ByzantineFault(value=0.8)
                ),
                SynapseBernoulliSampler(
                    small_net, 0.1, fault=SynapseNoiseFault(sigma=0.1)
                ),
            ]
        )
        batch = mixed.sample(40, rng)
        np.testing.assert_array_equal(batch.zero_masks[0].sum(axis=1), 2)
        np.testing.assert_array_equal(batch.set_masks[1].sum(axis=1), 1)
        assert batch.has_synapse_faults and batch.is_stochastic

    def test_later_component_wins_on_collisions(self, small_net, rng):
        """Both components fail the whole first layer: every cell
        collides, and the later (Byzantine) component must own them —
        the FailureScenario.merged_with semantics."""
        width = small_net.layer_sizes[0]
        mixed = MixedFaultSampler(
            [
                FixedDistributionSampler(small_net, (width, 0)),
                FixedDistributionSampler(
                    small_net, (width, 0), fault=StuckAtFault(0.7)
                ),
            ]
        )
        batch = mixed.sample(5, rng)
        assert not batch.zero_masks[0].any()
        assert batch.set_masks[0].all()

    def test_mixed_campaign_evaluates(self, injector, batch, rng):
        mixed = MixedFaultSampler(
            [
                FixedDistributionSampler(injector.network, (1, 1)),
                SynapseBernoulliSampler(injector.network, 0.05),
            ]
        )
        errs = sampled_campaign_errors(injector, batch, mixed, 64, seed=2)
        assert errs.shape == (64,) and np.all(np.isfinite(errs))

    def test_rejects_mismatched_components(self, small_net):
        other = build_mlp(3, [4, 4], seed=9)
        with pytest.raises(ValueError, match="layer sizes"):
            MixedFaultSampler(
                [
                    FixedDistributionSampler(small_net, (1, 0)),
                    FixedDistributionSampler(other, (1, 0)),
                ]
            )
        with pytest.raises(ValueError, match="at least one"):
            MixedFaultSampler([])

    def test_merge_empty_list(self, small_net):
        merged = merge_mask_batches(small_net.layer_sizes, [])
        assert merged.num_scenarios == 0
