"""Tests for the per-layer-Lipschitz refinement of Fep."""

import numpy as np
import pytest

from repro.core.fep import (
    forward_error_propagation,
    heterogeneous_fep,
    network_fep,
    network_heterogeneous_fep,
)
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import random_failure_scenario
from repro.faults.types import ByzantineFault
from repro.network import FeedForwardNetwork, Sigmoid
from repro.network.layers import DenseLayer


def mixed_k_network(k1=2.0, k2=0.25, seed=0):
    """Two hidden layers with very different Lipschitz constants."""
    rng = np.random.default_rng(seed)
    l1 = DenseLayer(2, 6, Sigmoid(k1),
                    weights=rng.uniform(-0.5, 0.5, (6, 2)), use_bias=False)
    l2 = DenseLayer(6, 5, Sigmoid(k2),
                    weights=rng.uniform(-0.5, 0.5, (5, 6)), use_bias=False)
    return FeedForwardNetwork([l1, l2], rng.uniform(-0.5, 0.5, (1, 5)))


class TestHeterogeneousFep:
    def test_reduces_to_homogeneous_for_uniform_k(self):
        sizes, w, f = [4, 3], [1.0, 0.5, 0.4], [1, 1]
        het = heterogeneous_fep(f, sizes, w, [1.5, 1.5], 2.0)
        hom = forward_error_propagation(f, sizes, w, 1.5, 2.0)
        assert het == pytest.approx(hom)

    def test_never_exceeds_worst_case_k(self):
        net = mixed_k_network()
        for dist in [(1, 0), (2, 1), (0, 2)]:
            het = network_heterogeneous_fep(net, dist, capacity=1.0)
            hom = network_fep(net, dist, capacity=1.0)
            assert het <= hom + 1e-12

    def test_strict_gap_on_mixed_networks(self):
        net = mixed_k_network(k1=2.0, k2=0.25)
        # A layer-1 failure traverses only the K=0.25 layer; the
        # homogeneous bound charges K=2 for it.
        het = network_heterogeneous_fep(net, (1, 0), capacity=1.0)
        hom = network_fep(net, (1, 0), capacity=1.0)
        assert het < 0.2 * hom

    def test_downstream_constants_only(self):
        # Failures in the last layer are unaffected by any K.
        net = mixed_k_network()
        het = network_heterogeneous_fep(net, (0, 1), capacity=1.0)
        assert het == pytest.approx(net.weight_max(3))

    def test_hand_computation(self):
        # L=2, f=(1,0): C * K_2 * (N_2 w2)(1 w3).
        got = heterogeneous_fep([1, 0], [3, 4], [9, 0.5, 0.25], [5.0, 0.5], 1.0)
        assert got == pytest.approx(0.5 * (4 * 0.5) * 0.25)

    def test_still_sound_under_injection(self, rng):
        net = mixed_k_network(seed=3)
        injector = FaultInjector(net, capacity=1.0)
        x = rng.random((32, 2))
        dist = (2, 1)
        bound = network_heterogeneous_fep(net, dist, capacity=1.0)
        worst = 0.0
        for _ in range(40):
            sc = random_failure_scenario(
                net, dist, fault=ByzantineFault(), rng=rng
            )
            worst = max(worst, injector.output_error(x, sc))
        assert worst <= bound + 1e-9

    def test_validation(self):
        with pytest.raises(ValueError):
            heterogeneous_fep([1], [3], [1, 1], [1.0, 1.0], 1.0)
        with pytest.raises(ValueError):
            heterogeneous_fep([1], [3], [1, 1], [0.0], 1.0)
        with pytest.raises(ValueError):
            heterogeneous_fep([4], [3], [1, 1], [1.0], 1.0)
