"""Tests for intermittent faults and nonzero-bias semantics."""

import numpy as np
import pytest

from repro.distributed.simulator import DistributedNetwork
from repro.faults.injector import FaultInjector, static_fault_action
from repro.faults.scenarios import FailureScenario, crash_scenario
from repro.faults.types import ByzantineFault, CrashFault, IntermittentFault
from repro.network import build_mlp
from repro.network.model import NeuronAddress


class TestIntermittentFault:
    def test_p_zero_is_nominal(self):
        fault = IntermittentFault(p=0.0)
        nominal = np.linspace(0, 1, 11)
        out = fault.apply(nominal, rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out, nominal)

    def test_p_one_is_wrapped_fault(self):
        fault = IntermittentFault(p=1.0, fault=CrashFault())
        out = fault.apply(np.ones(5), rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out, 0.0)

    def test_hit_rate_statistics(self):
        fault = IntermittentFault(p=0.3, fault=CrashFault())
        out = fault.apply(np.ones(20000), rng=np.random.default_rng(1))
        assert abs((out == 0).mean() - 0.3) < 0.02

    def test_wraps_byzantine(self):
        fault = IntermittentFault(p=1.0, fault=ByzantineFault(value=9.0))
        out = fault.apply(np.zeros(3), rng=np.random.default_rng(0))
        np.testing.assert_array_equal(out, 9.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            IntermittentFault(p=1.5)
        with pytest.raises(TypeError):
            IntermittentFault(p=0.5, fault="crash")

    def test_not_static(self):
        assert static_fault_action(IntermittentFault(p=0.5)) is None

    def test_injection_damage_between_nominal_and_permanent(
        self, small_net, batch
    ):
        inj = FaultInjector(small_net, capacity=1.0)
        addr = NeuronAddress(2, 0)
        permanent = inj.output_error(batch, crash_scenario([addr]))
        intermittent = inj.output_error(
            batch,
            FailureScenario({addr: IntermittentFault(p=0.4)}),
            rng=np.random.default_rng(3),
        )
        assert 0 < intermittent <= permanent + 1e-12

    def test_bound_still_dominates(self, small_net, batch):
        """Worst case, the intermittent fault is the wrapped fault
        everywhere — so crash-mode Fep still dominates."""
        from repro.core.fep import network_fep

        inj = FaultInjector(small_net, capacity=1.0)
        scenario = FailureScenario(
            {
                NeuronAddress(1, 0): IntermittentFault(p=0.7),
                NeuronAddress(2, 1): IntermittentFault(p=0.7),
            }
        )
        err = inj.output_error(batch, scenario, rng=np.random.default_rng(4))
        assert err <= network_fep(small_net, (1, 1), mode="crash") + 1e-9


class TestNonzeroBiasSemantics:
    @pytest.fixture
    def biased_net(self, rng):
        net = build_mlp(2, [5, 4], seed=60)
        for layer in net.layers:
            layer.bias[:] = rng.normal(0.0, 0.5, size=layer.bias.shape)
        net.output_bias[:] = 0.3
        return net

    def test_simulator_matches_forward_with_biases(self, biased_net, rng):
        sim = DistributedNetwork(biased_net, capacity=1.0)
        x = rng.random((5, 2))
        np.testing.assert_allclose(
            sim.run_batch(x), biased_net.forward(x), atol=1e-12
        )

    def test_simulator_matches_injector_with_biases(self, biased_net, rng):
        sc = crash_scenario([(1, 1), (2, 0)])
        sim = DistributedNetwork(biased_net, capacity=1.0)
        sim.apply_scenario(sc)
        inj = FaultInjector(biased_net, capacity=1.0)
        x = rng.random((5, 2))
        np.testing.assert_allclose(
            sim.run_batch(x), inj.run(x, sc), atol=1e-12
        )

    def test_crashed_neuron_bias_also_silenced(self, biased_net, rng):
        """A crashed neuron sends nothing — including whatever its bias
        would have contributed (bias lives inside the neuron)."""
        inj = FaultInjector(biased_net, capacity=1.0)
        x = rng.random((4, 2))
        _, taps = inj.run(x, crash_scenario([(1, 0)]), return_taps=True)
        assert np.all(taps[0][:, 0] == 0.0)

    def test_output_bias_unaffected_by_failures(self, biased_net, rng):
        """The output node's bias is a constant offset outside the
        failure model: crashing everything but one neuron per layer
        leaves exactly bias + surviving contributions."""
        victims = [(1, i) for i in range(1, 5)] + [(2, i) for i in range(1, 4)]
        inj = FaultInjector(biased_net, capacity=1.0)
        x = rng.random((3, 2))
        out = inj.run(x, crash_scenario(victims))
        assert np.all(np.isfinite(out))
