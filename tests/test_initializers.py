"""Unit tests for weight initialisers."""

import numpy as np
import pytest

from repro.network.initializers import (
    ConstantInitializer,
    HeNormal,
    NormalInitializer,
    UniformInitializer,
    XavierNormal,
    XavierUniform,
    get_initializer,
)


class TestUniform:
    def test_bounds_guarantee_w_max(self, rng):
        init = UniformInitializer(scale=0.3)
        w = init((50, 40), rng)
        assert np.abs(w).max() <= 0.3

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            UniformInitializer(scale=0.0)


class TestNormal:
    def test_statistics(self, rng):
        w = NormalInitializer(std=0.2)((200, 200), rng)
        assert abs(w.std() - 0.2) < 0.01
        assert abs(w.mean()) < 0.01

    def test_std_validation(self):
        with pytest.raises(ValueError):
            NormalInitializer(std=-1.0)


class TestVarianceScaled:
    def test_xavier_uniform_limit(self, rng):
        w = XavierUniform()((30, 20), rng)
        limit = np.sqrt(6.0 / 50)
        assert np.abs(w).max() <= limit

    def test_xavier_normal_std(self, rng):
        w = XavierNormal()((300, 300), rng)
        assert abs(w.std() - np.sqrt(2.0 / 600)) < 0.005

    def test_he_normal_std(self, rng):
        w = HeNormal()((300, 300), rng)
        assert abs(w.std() - np.sqrt(2.0 / 300)) < 0.005


class TestConstant:
    def test_fills(self, rng):
        w = ConstantInitializer(0.7)((3, 4), rng)
        assert np.all(w == 0.7)


class TestRegistry:
    def test_by_name_and_spec(self, rng):
        assert isinstance(get_initializer("he_normal"), HeNormal)
        init = get_initializer({"name": "uniform", "scale": 0.1})
        assert init.scale == 0.1

    def test_passthrough(self):
        init = XavierUniform()
        assert get_initializer(init) is init

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_initializer("orthogonal")

    def test_bad_spec(self):
        with pytest.raises(TypeError):
            get_initializer(3.14)

    def test_reproducibility_with_seeded_rng(self):
        a = UniformInitializer(0.5)((5, 5), np.random.default_rng(0))
        b = UniformInitializer(0.5)((5, 5), np.random.default_rng(0))
        np.testing.assert_array_equal(a, b)
