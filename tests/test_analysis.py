"""Unit tests for the analysis utilities (lipschitz, topology, sweep,
stats)."""

import numpy as np
import pytest

from repro.analysis.lipschitz import (
    estimate_lipschitz,
    estimate_network_lipschitz,
    sigmoid_profile,
    slope_at_origin,
)
from repro.analysis.stats import (
    bootstrap_ci,
    dominance_ratio,
    is_monotone,
    loglog_slope,
    summarize,
)
from repro.analysis.sweep import grid_configurations, parameter_sweep
from repro.analysis.topology import figure1_network_stats, to_graph, topology_stats
from repro.network import Sigmoid, build_conv_net, build_mlp


class TestLipschitz:
    @pytest.mark.parametrize("k", [0.25, 1.0, 3.0])
    def test_estimate_matches_declared(self, k):
        assert estimate_lipschitz(Sigmoid(k)) == pytest.approx(k, rel=1e-3)

    def test_slope_at_origin(self):
        assert slope_at_origin(Sigmoid(2.0)) == pytest.approx(2.0, rel=1e-5)

    def test_profile_keys_and_shapes(self):
        prof = sigmoid_profile([0.5, 1.0], n_points=11)
        assert set(prof) == {0.5, 1.0}
        xs, ys = prof[0.5]
        assert xs.shape == ys.shape == (11,)

    def test_network_lipschitz_grows_with_k(self):
        lows, highs = [], []
        for k, store in ((0.25, lows), (2.0, highs)):
            net = build_mlp(
                2, [8, 8], activation={"name": "sigmoid", "k": k},
                init={"name": "uniform", "scale": 0.5}, output_scale=0.5, seed=0,
            )
            store.append(estimate_network_lipschitz(net))
        assert highs[0] > lows[0]

    def test_estimate_validation(self):
        with pytest.raises(ValueError):
            estimate_lipschitz(Sigmoid(1.0), n_points=2)


class TestTopology:
    def test_node_and_edge_counts(self, small_net):
        g = to_graph(small_net)
        assert g.number_of_nodes() == 3 + 8 + 6 + 1
        assert g.number_of_edges() == small_net.num_synapses

    def test_edge_weights_match_model(self, small_net):
        g = to_graph(small_net)
        assert g.edges[("in", 0), (1, 0)]["weight"] == pytest.approx(
            float(small_net.layers[0].weights[0, 0])
        )

    def test_conv_graph_is_sparse(self):
        net = build_conv_net(10, [3], seed=0)
        g = to_graph(net)
        assert g.number_of_edges() == net.num_synapses == 8 * 3 + 8

    def test_stats_fields(self, small_net):
        stats = topology_stats(small_net)
        assert stats["is_dag"]
        assert stats["longest_path_len"] == 3
        assert stats["n_neurons"] == 14
        assert stats["weight_maxes"] == small_net.weight_maxes()

    def test_figure1_stats(self):
        net = build_mlp(3, [4, 3, 4], seed=0)
        stats = figure1_network_stats(net)
        assert stats["n_clients"] == 4
        assert stats["path_length_input_to_output"] == 4


class TestSweep:
    def test_grid_configurations(self):
        grid = grid_configurations(a=[1, 2], b=["x"])
        assert grid == [{"a": 1, "b": "x"}, {"a": 2, "b": "x"}]
        assert grid_configurations() == [{}]

    def test_serial_sweep(self):
        result = parameter_sweep(_square, grid_configurations(v=[1, 2, 3]))
        assert result.values() == [1, 4, 9]
        assert result.column("v") == [1, 2, 3]

    def test_rows_merge_dict_results(self):
        result = parameter_sweep(_square_dict, grid_configurations(v=[2]))
        rows = result.as_rows()
        assert rows == [{"v": 2, "sq": 4}]

    @pytest.mark.slow
    def test_parallel_matches_serial(self):
        cfgs = grid_configurations(v=list(range(8)))
        serial = parameter_sweep(_square, cfgs)
        parallel = parameter_sweep(_square, cfgs, n_workers=2)
        assert serial.values() == parallel.values()


def _square(v):
    return v * v


def _square_dict(v):
    return {"sq": v * v}


class TestStats:
    def test_summary(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.n == 4 and s.mean == 2.5 and s.maximum == 4.0

    def test_summary_empty(self):
        assert summarize([]).n == 0

    def test_bootstrap_ci_contains_mean(self):
        rng = np.random.default_rng(0)
        data = rng.normal(5.0, 1.0, size=200)
        lo, hi = bootstrap_ci(data, seed=1)
        assert lo < 5.0 < hi and hi - lo < 0.6

    def test_loglog_slope_recovers_power(self):
        x = np.array([1.0, 2.0, 4.0, 8.0])
        slope, r = loglog_slope(x, x**3)
        assert slope == pytest.approx(3.0)
        assert r == pytest.approx(1.0)

    def test_loglog_drops_nonpositive(self):
        slope, _ = loglog_slope([1, 2, 4, 0], [1, 4, 16, -1])
        assert slope == pytest.approx(2.0)
        with pytest.raises(ValueError):
            loglog_slope([0, 0], [1, 1])

    def test_is_monotone(self):
        assert is_monotone([1, 2, 3])
        assert not is_monotone([1, 3, 2])
        assert is_monotone([1, 3, 2.95], tolerance=0.1)
        assert is_monotone([3, 2, 1], increasing=False)

    def test_dominance_ratio(self):
        assert dominance_ratio([1.0, 2.0], [0.5, 1.0]) == 0.5
        assert dominance_ratio([1.0], [2.0]) == 2.0
        assert dominance_ratio([0.0], [0.0]) == 0.0
        assert dominance_ratio([0.0], [1.0]) == np.inf
        with pytest.raises(ValueError):
            dominance_ratio([1.0], [1.0, 2.0])
