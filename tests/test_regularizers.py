"""Unit tests for regularisers, including the Fep regulariser."""

import numpy as np
import pytest

from repro.core.fep import network_fep
from repro.network import build_mlp
from repro.training.regularizers import (
    FepRegularizer,
    L2Regularizer,
    MaxNormConstraint,
)


class TestL2:
    def test_penalty_value(self, small_net):
        reg = L2Regularizer(lam=0.5)
        expected = 0.5 * sum(
            float(np.sum(arr**2))
            for name, arr in small_net.parameters().items()
            if name.endswith(".weights")
        )
        assert reg.penalty(small_net) == pytest.approx(expected)

    def test_gradients_point_at_weights(self, small_net):
        reg = L2Regularizer(lam=0.1)
        grads = reg.gradients(small_net)
        assert "layer1.weights" in grads and "output.weights" in grads
        assert "layer1.bias" not in grads
        np.testing.assert_allclose(
            grads["layer1.weights"], 0.2 * small_net.layers[0].weights
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            L2Regularizer(lam=-1.0)


class TestMaxNorm:
    def test_projection_caps_weights(self, small_net):
        small_net.scale_weights(10.0)
        MaxNormConstraint(0.3).project(small_net)
        assert max(small_net.weight_maxes()) <= 0.3

    def test_bias_untouched_by_default(self, small_net):
        small_net.layers[0].bias[:] = 5.0
        MaxNormConstraint(0.3).project(small_net)
        assert small_net.layers[0].bias[0] == 5.0

    def test_bias_included_when_asked(self, small_net):
        small_net.layers[0].bias[:] = 5.0
        MaxNormConstraint(0.3, include_bias=True).project(small_net)
        assert small_net.layers[0].bias[0] == 0.3

    def test_no_penalty_term(self, small_net):
        assert MaxNormConstraint(0.5).penalty(small_net) == 0.0

    def test_stage_selective_projection(self, small_net):
        small_net.scale_weights(10.0)
        w1_before = small_net.layers[0].weights.copy()
        MaxNormConstraint(0.1, stages=(2, 3)).project(small_net)
        # Stage 1 (input weights) untouched — it never enters Fep.
        np.testing.assert_array_equal(small_net.layers[0].weights, w1_before)
        assert small_net.layers[1].max_abs_weight() <= 0.1
        assert np.abs(small_net.output_weights).max() <= 0.1

    def test_stage_cap_shrinks_fep_without_touching_stage1(self, small_net):
        fep_before = network_fep(small_net, (2, 1), mode="crash")
        MaxNormConstraint(0.01, stages=(2, 3)).project(small_net)
        assert network_fep(small_net, (2, 1), mode="crash") < fep_before


class TestFepRegularizer:
    def test_penalty_equals_lam_times_fep(self, small_net):
        reg = FepRegularizer((1, 1), lam=0.2, capacity=1.0)
        assert reg.penalty(small_net) == pytest.approx(
            0.2 * network_fep(small_net, (1, 1), capacity=1.0, mode="byzantine")
        )

    def test_gradient_targets_argmax_weights(self, small_net):
        reg = FepRegularizer((1, 1), lam=1.0)
        grads = reg.gradients(small_net)
        # w_m^(1) never enters the neuron-failure Fep.
        assert "layer1.weights" not in grads
        for key in ("layer2.weights", "output.weights"):
            g = grads[key]
            assert np.count_nonzero(g) == 1
            arr = small_net.parameters()[key]
            idx = np.unravel_index(np.argmax(np.abs(g)), g.shape)
            assert abs(arr[idx]) == pytest.approx(np.abs(arr).max())

    def test_gradient_descends_fep(self, small_net):
        reg = FepRegularizer((2, 2), lam=1.0)
        before = reg.penalty(small_net)
        grads = reg.gradients(small_net)
        for key, g in grads.items():
            small_net.parameters()[key][...] -= 0.05 * g
        assert reg.penalty(small_net) < before

    def test_depth_mismatch_raises(self, small_net):
        reg = FepRegularizer((1,), lam=1.0)
        with pytest.raises(ValueError):
            reg.penalty(small_net)

    def test_training_with_fep_regularizer_reduces_fep(self, rng):
        from repro.training.trainer import Trainer

        net = build_mlp(
            2, [8, 6], init={"name": "uniform", "scale": 0.6},
            output_scale=0.6, seed=9,
        )
        x = rng.random((128, 2))
        y = rng.random((128, 1))
        fep_before = network_fep(net, (2, 1), mode="crash")
        trainer = Trainer(
            optimizer="sgd",
            regularizers=[FepRegularizer((2, 1), lam=0.05)],
        )
        trainer.train(net, x, y, epochs=20, batch_size=32, rng=rng)
        assert network_fep(net, (2, 1), mode="crash") < fep_before
