"""Unit tests for DenseLayer and Conv1DLayer."""

import numpy as np
import pytest

from repro.network.activations import Identity, Sigmoid
from repro.network.layers import Conv1DLayer, DenseLayer, layer_from_spec


class TestDenseLayer:
    def test_forward_matches_manual_computation(self):
        w = np.array([[1.0, -2.0], [0.5, 0.5]])
        b = np.array([0.1, -0.1])
        layer = DenseLayer(2, 2, Identity(), weights=w, bias=b)
        x = np.array([[1.0, 1.0]])
        np.testing.assert_allclose(layer.forward(x), x @ w.T + b)

    def test_activation_applied(self):
        w = np.zeros((3, 2))
        layer = DenseLayer(2, 3, Sigmoid(1.0), weights=w, use_bias=False)
        out = layer.forward(np.array([[0.3, 0.7]]))
        np.testing.assert_allclose(out, 0.5)  # sigmoid(0) = 1/2

    def test_no_bias_mode(self):
        layer = DenseLayer(2, 2, Identity(), weights=np.eye(2), use_bias=False)
        x = np.array([[2.0, 3.0]])
        np.testing.assert_allclose(layer.forward(x), x)

    def test_max_abs_weight(self):
        w = np.array([[0.1, -0.9], [0.3, 0.2]])
        layer = DenseLayer(2, 2, weights=w)
        assert layer.max_abs_weight() == pytest.approx(0.9)

    def test_dense_weights_is_view(self):
        layer = DenseLayer(2, 2, weights=np.eye(2))
        layer.dense_weights()[0, 0] = 5.0
        assert layer.weights[0, 0] == 5.0

    def test_synapse_mask_full(self):
        layer = DenseLayer(3, 4)
        assert layer.synapse_mask().all()
        assert layer.num_synapses == 12

    def test_shape_validation(self):
        with pytest.raises(ValueError, match="weights shape"):
            DenseLayer(2, 2, weights=np.zeros((3, 2)))
        with pytest.raises(ValueError, match="bias shape"):
            DenseLayer(2, 2, weights=np.zeros((2, 2)), bias=np.zeros(3))
        with pytest.raises(ValueError, match="dimensions"):
            DenseLayer(0, 2)

    def test_parameters_are_mutable_views(self):
        layer = DenseLayer(2, 2, weights=np.eye(2))
        layer.parameters()["weights"] += 1.0
        assert layer.weights[0, 0] == 2.0

    def test_copy_is_deep(self):
        layer = DenseLayer(2, 2, weights=np.eye(2))
        clone = layer.copy()
        clone.weights[0, 0] = 9.0
        assert layer.weights[0, 0] == 1.0

    def test_explicit_weights_are_copied(self):
        w = np.eye(2)
        layer = DenseLayer(2, 2, weights=w)
        w[0, 0] = 7.0
        assert layer.weights[0, 0] == 1.0


class TestConv1DLayer:
    def test_output_width(self):
        layer = Conv1DLayer(10, 3)
        assert layer.n_out == 8

    def test_forward_matches_dense_equivalent(self):
        rng = np.random.default_rng(0)
        layer = Conv1DLayer(9, 4, Sigmoid(1.0), rng=rng)
        x = rng.random((5, 9))
        dense = layer.dense_weights()
        expected = layer.activation(x @ dense.T + layer.bias[0])
        np.testing.assert_allclose(layer.forward(x), expected, rtol=1e-12)

    def test_forward_1d_input(self):
        layer = Conv1DLayer(6, 2, kernel=np.array([1.0, -1.0]), use_bias=False,
                            activation=Identity())
        x = np.array([1.0, 2.0, 4.0, 7.0, 11.0, 16.0])
        np.testing.assert_allclose(layer.forward(x), [-1, -2, -3, -4, -5])

    def test_weight_sharing_in_dense_equivalent(self):
        layer = Conv1DLayer(7, 3, kernel=np.array([1.0, 2.0, 3.0]))
        dense = layer.dense_weights()
        for p in range(layer.n_out):
            np.testing.assert_allclose(dense[p, p : p + 3], [1.0, 2.0, 3.0])
        assert np.count_nonzero(dense) == layer.n_out * 3

    def test_max_abs_weight_reads_kernel_only(self):
        layer = Conv1DLayer(7, 3, kernel=np.array([0.5, -2.5, 1.0]))
        assert layer.max_abs_weight() == pytest.approx(2.5)

    def test_synapse_mask_banded(self):
        layer = Conv1DLayer(5, 2)
        mask = layer.synapse_mask()
        assert layer.num_synapses == 4 * 2
        assert mask[0, 0] and mask[0, 1] and not mask[0, 2]

    def test_receptive_field_validation(self):
        with pytest.raises(ValueError):
            Conv1DLayer(3, 5)
        with pytest.raises(ValueError):
            Conv1DLayer(5, 0)
        with pytest.raises(ValueError, match="kernel shape"):
            Conv1DLayer(5, 2, kernel=np.zeros(3))

    def test_copy_is_deep(self):
        layer = Conv1DLayer(5, 2, kernel=np.array([1.0, 2.0]))
        clone = layer.copy()
        clone.kernel[0] = 9.0
        assert layer.kernel[0] == 1.0


class TestLayerFromSpec:
    def test_dense_roundtrip_structure(self):
        layer = DenseLayer(3, 4, Sigmoid(2.0), use_bias=False)
        rebuilt = layer_from_spec(layer.spec())
        assert rebuilt.n_in == 3 and rebuilt.n_out == 4
        assert rebuilt.activation.lipschitz == 2.0
        assert rebuilt.use_bias is False

    def test_conv_roundtrip_structure(self):
        layer = Conv1DLayer(8, 3, Sigmoid(0.5))
        rebuilt = layer_from_spec(layer.spec())
        assert isinstance(rebuilt, Conv1DLayer)
        assert rebuilt.receptive_field == 3 and rebuilt.n_in == 8

    def test_unknown_type_raises(self):
        with pytest.raises(KeyError):
            layer_from_spec({"type": "recurrent"})
