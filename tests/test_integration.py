"""End-to-end integration tests: the full pipeline the paper implies.

train an over-provisioned approximation -> certify it -> inject the
certified failures -> the epsilon guarantee holds against the *target
function*, not just against the nominal network output.
"""

import numpy as np
import pytest

from repro.core.certification import certify
from repro.core.fep import network_fep
from repro.distributed.boosting import LatencyModel, simulate_boosted_run
from repro.distributed.simulator import DistributedNetwork
from repro.faults.campaign import monte_carlo_campaign
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import random_failure_scenario
from repro.network import build_mlp, load_network, save_network
from repro.quantization.precision import build_quantized_network, greedy_bit_allocation
from repro.training.data import gaussian_bump, grid_inputs, sample_dataset, sup_error
from repro.training.regularizers import MaxNormConstraint
from repro.training.trainer import Trainer


@pytest.fixture(scope="module")
def trained():
    """Train one over-provisioned approximation once for the module."""
    target = gaussian_bump(2, width=0.25)
    net = build_mlp(
        2,
        [24, 16],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.3},
        output_scale=0.3,
        seed=100,
    )
    rng = np.random.default_rng(100)
    X, y = sample_dataset(target, 1024, rng=rng)
    trainer = Trainer(
        optimizer="adam", regularizers=[MaxNormConstraint(0.5)]
    )
    trainer.train(net, X, y, epochs=150, batch_size=64, rng=rng)
    grid = grid_inputs(2, 20)
    eps_prime = sup_error(net, target, grid)
    return net, target, grid, eps_prime


class TestTrainCertifyInject:
    def test_training_reached_useful_precision(self, trained):
        _, _, _, eps_prime = trained
        assert eps_prime < 0.35

    def test_certified_failures_keep_epsilon_vs_target(self, trained):
        net, target, grid, eps_prime = trained
        epsilon = eps_prime + 0.15  # required accuracy; surplus is the budget
        cert = certify(net, epsilon, eps_prime, mode="crash")
        dist = cert.maximal_distribution
        injector = FaultInjector(net, capacity=net.output_bound)
        rng = np.random.default_rng(7)
        truth = target(grid)
        for trial in range(20):
            scenario = random_failure_scenario(net, dist, rng=rng)
            faulty = injector.run(grid, scenario)[:, 0]
            # Definition 3: the failed network still eps-approximates F.
            assert np.max(np.abs(faulty - truth)) <= epsilon + 1e-9

    def test_audit_agrees_with_direct_campaign(self, trained):
        net, _, grid, eps_prime = trained
        epsilon = eps_prime + 0.15
        cert = certify(net, epsilon, eps_prime, mode="crash")
        injector = FaultInjector(net, capacity=net.output_bound)
        campaign = monte_carlo_campaign(
            injector, grid[::7], cert.maximal_distribution, n_scenarios=50, seed=1
        )
        assert campaign.max_error <= cert.budget + 1e-9


class TestCrossEngineConsistency:
    def test_simulator_injector_and_saved_network_agree(self, trained, tmp_path):
        net, _, grid, _ = trained
        path = save_network(net, tmp_path / "trained.npz")
        reloaded = load_network(path)
        scenario = random_failure_scenario(
            net, (2, 1), rng=np.random.default_rng(3)
        )
        injector = FaultInjector(reloaded, capacity=1.0)
        sim = DistributedNetwork(reloaded, capacity=1.0)
        sim.apply_scenario(scenario)
        x = grid[:10]
        np.testing.assert_allclose(
            sim.run_batch(x), injector.run(x, scenario), atol=1e-10
        )


class TestQuantizedDeployment:
    def test_bit_allocation_keeps_epsilon_vs_target(self, trained):
        net, target, grid, eps_prime = trained
        budget = 0.1
        alloc = greedy_bit_allocation(net, budget)
        qnet = build_quantized_network(net, alloc)
        truth = target(grid)
        q_err = np.max(np.abs(qnet.forward(grid)[:, 0] - truth))
        assert q_err <= eps_prime + budget + 1e-9


class TestBoostedDeployment:
    def test_boosting_on_trained_network(self, trained):
        net, target, grid, eps_prime = trained
        epsilon = eps_prime + 0.15
        cert = certify(net, epsilon, eps_prime, mode="crash")
        dist = tuple(min(f, 2) for f in cert.maximal_distribution)
        lat = LatencyModel.uniform_random(
            net, straggler_fraction=0.1, straggler_scale=20,
            rng=np.random.default_rng(4),
        )
        result = simulate_boosted_run(net, grid[:16], lat, dist)
        assert result.observed_error <= network_fep(net, dist, mode="crash") + 1e-9
        assert result.speedup >= 1.0
