"""Unit tests for the probabilistic reliability layer."""

import numpy as np
import pytest

from repro.core.tolerance import greedy_max_total_failures
from repro.faults.reliability import (
    certified_survival_probability,
    mean_failures_to_violation,
    mission_survival_curve,
    monte_carlo_survival,
)
from repro.network import build_mlp


@pytest.fixture
def robust_net():
    return build_mlp(
        2,
        [8, 6],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.08},
        output_scale=0.05,
        seed=30,
    )


class TestCertifiedSurvival:
    def test_p_zero_is_certain(self, robust_net):
        assert certified_survival_probability(robust_net, 0.0, 0.5, 0.1) == (
            pytest.approx(1.0)
        )

    def test_p_one_is_never_tolerated(self, robust_net):
        # All neurons failing violates f_l < N_l.
        assert certified_survival_probability(robust_net, 1.0, 0.5, 0.1) == (
            pytest.approx(0.0)
        )

    def test_monotone_in_p(self, robust_net):
        ps = [0.0, 0.05, 0.1, 0.2, 0.4]
        vals = [
            certified_survival_probability(robust_net, p, 0.5, 0.1) for p in ps
        ]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_monotone_in_budget(self, robust_net):
        lo = certified_survival_probability(robust_net, 0.1, 0.2, 0.1)
        hi = certified_survival_probability(robust_net, 0.1, 0.8, 0.1)
        assert hi >= lo

    def test_validation(self, robust_net):
        with pytest.raises(ValueError):
            certified_survival_probability(robust_net, -0.1, 0.5, 0.1)
        with pytest.raises(ValueError):
            certified_survival_probability(robust_net, 0.1, 0.1, 0.5)
        with pytest.raises(ValueError, match="grid"):
            certified_survival_probability(
                robust_net, 0.1, 0.5, 0.1, max_grid=10
            )

    def test_matches_direct_enumeration_single_layer(self):
        """Hand-check against the Theorem-1 closed form on L=1."""
        from scipy import stats as sps

        net = build_mlp(
            2, [6], init={"name": "uniform", "scale": 0.1},
            output_scale=0.1, seed=0,
        )
        eps, eps_p = 0.5, 0.1
        w = net.weight_max(2)
        f_max = min(int((eps - eps_p) / w + 1e-12), 5)
        p = 0.15
        expected = float(sps.binom.cdf(f_max, 6, p))
        got = certified_survival_probability(net, p, eps, eps_p)
        assert got == pytest.approx(expected, abs=1e-12)


class TestMonteCarloSurvival:
    def test_dominates_certified_bound(self, robust_net, rng):
        x = rng.random((24, 2))
        est = monte_carlo_survival(
            robust_net, 0.1, 0.5, 0.1, x, n_trials=200, seed=0
        )
        assert est.certified_lower_bound is not None
        # The MC estimate counts placements the worst case forbids, so
        # it must (statistically) dominate the certified bound.
        assert est.ci_high >= est.certified_lower_bound - 0.05

    def test_p_zero_always_survives(self, robust_net, rng):
        est = monte_carlo_survival(
            robust_net, 0.0, 0.5, 0.1, rng.random((8, 2)), n_trials=20, seed=0
        )
        assert est.survival == 1.0

    def test_ci_ordering(self, robust_net, rng):
        est = monte_carlo_survival(
            robust_net, 0.2, 0.5, 0.1, rng.random((8, 2)), n_trials=50, seed=1
        )
        assert 0 <= est.ci_low <= est.survival <= est.ci_high <= 1

    def test_validation(self, robust_net, rng):
        with pytest.raises(ValueError):
            monte_carlo_survival(
                robust_net, 1.5, 0.5, 0.1, rng.random((4, 2)), n_trials=5
            )


class TestMissionCurve:
    def test_curve_decreasing_in_time(self, robust_net):
        curve = mission_survival_curve(
            robust_net, 0.01, [0.0, 10.0, 50.0, 200.0], 0.5, 0.1
        )
        times = [t for t, _ in curve]
        probs = [p for _, p in curve]
        assert times == [0.0, 10.0, 50.0, 200.0]
        assert probs[0] == pytest.approx(1.0)
        assert all(a >= b - 1e-12 for a, b in zip(probs, probs[1:]))

    def test_zero_rate_flat(self, robust_net):
        curve = mission_survival_curve(robust_net, 0.0, [0, 100], 0.5, 0.1)
        assert curve[0][1] == pytest.approx(curve[1][1])

    def test_validation(self, robust_net):
        with pytest.raises(ValueError):
            mission_survival_curve(robust_net, -0.1, [1.0], 0.5, 0.1)
        with pytest.raises(ValueError):
            mission_survival_curve(robust_net, 0.1, [-1.0], 0.5, 0.1)
        with pytest.raises(ValueError, match="needs x"):
            mission_survival_curve(
                robust_net, 0.1, [1.0], 0.5, 0.1, n_trials=10
            )

    def test_monte_carlo_triples_share_one_engine(self, robust_net, rng):
        """With x/n_trials the curve gains an estimated column; a shared
        engine reproduces the per-point monte_carlo_survival results."""
        x = rng.random((12, 2))
        times = [0.0, 5.0, 20.0]
        curve = mission_survival_curve(
            robust_net, 0.02, times, 0.5, 0.1, x=x, n_trials=60, seed=9
        )
        assert [t for t, *_ in curve] == times
        for t, certified, estimated in curve:
            p = 1.0 - float(np.exp(-0.02 * t))
            direct = monte_carlo_survival(
                robust_net, p, 0.5, 0.1, x, n_trials=60, seed=9
            )
            assert estimated == direct.survival
            assert estimated >= certified - 0.06

    def test_explicit_engine_reused_across_grid(self, robust_net, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        x = rng.random((8, 2))
        engine = MaskCampaignEngine(
            FaultInjector(robust_net, capacity=robust_net.output_bound), x
        )
        with_engine = mission_survival_curve(
            robust_net, 0.05, [0.0, 10.0], 0.5, 0.1,
            x=x, n_trials=40, seed=4, engine=engine,
        )
        without = mission_survival_curve(
            robust_net, 0.05, [0.0, 10.0], 0.5, 0.1,
            x=x, n_trials=40, seed=4,
        )
        assert with_engine == without


class TestMeanFailuresToViolation:
    def test_exceeds_greedy_tolerance(self, robust_net, rng):
        x = rng.random((16, 2))
        analytic = sum(greedy_max_total_failures(robust_net, 0.5, 0.1))
        empirical = mean_failures_to_violation(
            robust_net, 0.5, 0.1, x, n_trials=30, seed=0
        )
        # Random placements survive at least as long as the worst case.
        assert empirical >= analytic

    def test_matches_scalar_oracle(self, robust_net, rng):
        """The prefix-mask engine path reproduces the sequential scalar
        loop exactly: same seed, same permutations, same counts."""
        from repro.faults.reliability import (
            _mean_failures_to_violation_scalar,
        )

        x = rng.random((12, 2))
        for eps_prime in (0.45, 0.3):
            fast = mean_failures_to_violation(
                robust_net, 0.5, eps_prime, x, n_trials=25, seed=3
            )
            oracle = _mean_failures_to_violation_scalar(
                robust_net, 0.5, eps_prime, x, n_trials=25, seed=3
            )
            assert fast == oracle

    def test_chunking_does_not_change_results(self, robust_net, rng):
        x = rng.random((8, 2))
        a = mean_failures_to_violation(
            robust_net, 0.5, 0.4, x, n_trials=11, seed=1, trials_per_chunk=2
        )
        b = mean_failures_to_violation(
            robust_net, 0.5, 0.4, x, n_trials=11, seed=1, trials_per_chunk=64
        )
        assert a == b

    def test_engine_reuse(self, robust_net, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        x = rng.random((8, 2))
        engine = MaskCampaignEngine(
            FaultInjector(robust_net, capacity=robust_net.output_bound), x
        )
        shared = mean_failures_to_violation(
            robust_net, 0.5, 0.4, x, n_trials=10, seed=2, engine=engine
        )
        fresh = mean_failures_to_violation(
            robust_net, 0.5, 0.4, x, n_trials=10, seed=2
        )
        assert shared == fresh

    def test_engine_capacity_mismatch_rejected(self, robust_net, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        x = rng.random((8, 2))
        engine = MaskCampaignEngine(
            FaultInjector(robust_net, capacity=0.123), x
        )
        with pytest.raises(ValueError, match="capacity"):
            mean_failures_to_violation(
                robust_net, 0.5, 0.4, x, n_trials=5, engine=engine
            )

    def test_engine_probe_batch_mismatch_rejected(self, robust_net, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        engine = MaskCampaignEngine(
            FaultInjector(robust_net, capacity=robust_net.output_bound),
            rng.random((8, 2)),
        )
        with pytest.raises(ValueError, match="probe batch"):
            mean_failures_to_violation(
                robust_net, 0.5, 0.4, rng.random((8, 2)), n_trials=5,
                engine=engine,
            )


class TestEngineReuse:
    def test_shared_engine_matches_per_call_engines(self, robust_net, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        x = rng.random((16, robust_net.input_dim))
        engine = MaskCampaignEngine(
            FaultInjector(robust_net, capacity=robust_net.output_bound), x
        )
        for p in (0.05, 0.2):
            direct = monte_carlo_survival(
                robust_net, p, 0.5, 0.1, x, n_trials=120, seed=4
            )
            shared = monte_carlo_survival(
                robust_net, p, 0.5, 0.1, x, n_trials=120, seed=4, engine=engine
            )
            assert shared == direct

    def test_engine_for_other_network_rejected(self, robust_net, rng):
        from repro.faults.injector import FaultInjector
        from repro.faults.masks import MaskCampaignEngine

        other = build_mlp(
            2, [8, 6], activation={"name": "sigmoid", "k": 0.5},
            init={"name": "uniform", "scale": 0.08}, output_scale=0.05,
            seed=31,
        )
        x = rng.random((8, 2))
        engine = MaskCampaignEngine(
            FaultInjector(other, capacity=other.output_bound), x
        )
        with pytest.raises(ValueError, match="different network"):
            monte_carlo_survival(
                robust_net, 0.1, 0.5, 0.1, x, n_trials=20, engine=engine
            )
