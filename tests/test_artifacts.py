"""The artifact store: manifest round-trip, caching, CLI pipeline.

A toy registered experiment (module-level, so ``inspect.getsource``
works for the content key) counts its executions — the cache tests
assert *skips*, not just equal results.
"""

import json

import numpy as np
import pytest

from repro.artifacts import ArtifactStore, content_key
from repro.cli import main
from repro.experiments.registry import RegisteredExperiment
from repro.experiments.runner import ExperimentResult, jsonable

_TOY_CALLS = []


def _run_toy(seed: int = 7):
    """Toy experiment used by the store tests."""
    _TOY_CALLS.append(seed)
    return ExperimentResult(
        experiment_id="toy",
        description="toy experiment",
        rows=[{"a": 1.5, "pair": (1, 2), "np": np.float64(0.25)}],
        shape_checks={"ok": True},
        metrics={"m": np.float32(2.0)},
        notes=["a note"],
    )


TOY = RegisteredExperiment(
    "toy", _run_toy, title="Toy", anchor="Toy anchor", tags=("toy",),
    runtime="fast", order=1, module=__name__,
)


@pytest.fixture
def store(tmp_path):
    _TOY_CALLS.clear()
    return ArtifactStore(tmp_path / "results")


class TestJsonable:
    def test_lowering(self):
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.array([1, 2])) == [1, 2]
        assert jsonable({"k": np.int64(3)}) == {"k": 3}
        assert jsonable(float("inf")) == "inf"

    def test_nonfinite_metrics_round_trip_and_render(self):
        import math

        from repro.analysis.reporting import result_to_markdown

        r = ExperimentResult(
            "nf", "d", metrics={"i": float("inf"), "n": float("nan")},
            shape_checks={"ok": True},
        )
        back = ExperimentResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert back.metrics["i"] == float("inf")
        assert math.isnan(back.metrics["n"])
        assert "inf" in back.report()  # formatting must not raise
        assert "inf" in result_to_markdown(back)

    def test_result_round_trip(self):
        result = _run_toy()
        payload = json.loads(json.dumps(result.to_dict()))
        back = ExperimentResult.from_dict(payload)
        assert back.experiment_id == "toy"
        assert back.shape_checks == {"ok": True}
        assert back.passed
        assert back.rows[0]["pair"] == [1, 2]  # tuples come back as lists
        assert back.metrics["m"] == 2.0
        assert back.notes == ["a note"]

    def test_zero_dim_arrays_unwrap(self):
        """0-d ndarrays lower through the scalar path instead of
        crashing the list comprehension (np.mean and friends hand
        these back routinely)."""
        assert jsonable(np.array(1.5)) == 1.5
        assert jsonable(np.array(3, dtype=np.int64)) == 3
        assert jsonable(np.array(True)) is True
        assert jsonable(np.array(float("inf"))) == "inf"
        assert jsonable({"m": np.array(float("nan"))}) == {"m": "nan"}

    def test_float64_values_survive_exactly(self):
        """Full 53-bit mantissas survive the JSON round trip bit for
        bit — no silent float64 truncation."""
        vals = np.array([1.0 / 3.0, 0.1 + 0.2, np.nextafter(1.0, 2.0)])
        back = json.loads(json.dumps(jsonable(vals)))
        assert back == vals.tolist()
        scalar = np.float64(np.nextafter(0.5, 1.0))
        assert json.loads(json.dumps(jsonable(scalar))) == float(scalar)
        zero_d = np.array(np.nextafter(2.0, 3.0))
        assert json.loads(json.dumps(jsonable(zero_d))) == float(zero_d)

    def test_nested_numpy_payload_round_trip(self):
        """Telemetry-style payloads: nested dicts/tuples of numpy
        scalars, nd-arrays and 0-d arrays all lower to plain JSON."""
        payload = {
            "grid": np.arange(6, dtype=np.int32).reshape(2, 3),
            "scalars": (np.float32(0.5), np.int16(-2), np.bool_(True)),
            "zero_d": np.array(2.5),
            "mixed": [np.int8(1), {"deep": np.float64(0.75)}],
        }
        back = json.loads(json.dumps(jsonable(payload)))
        assert back == {
            "grid": [[0, 1, 2], [3, 4, 5]],
            "scalars": [0.5, -2, True],
            "zero_d": 2.5,
            "mixed": [1, {"deep": 0.75}],
        }


class TestStore:
    def test_run_persists_artifact_and_manifest(self, store):
        outcome = store.run(TOY)
        assert not outcome.cached and outcome.passed
        assert store.artifact_path("toy").exists()
        entry = store.entries()["toy"]
        assert entry["status"] == "pass"
        assert entry["failed_checks"] == []
        assert entry["seed"] == 7  # lifted from the entry point's default
        assert entry["dtype"] == "float64"
        assert entry["key"] == content_key(TOY)
        assert entry["wall_time_s"] >= 0
        assert entry["anchor"] == "Toy anchor"
        loaded = store.load_result("toy")
        assert loaded.to_dict() == outcome.result.to_dict()

    def test_second_run_is_a_cache_hit(self, store):
        first = store.run(TOY)
        outcome = store.run(TOY)
        assert outcome.cached
        assert len(_TOY_CALLS) == 1  # the function did not execute again
        assert outcome.result.to_dict() == first.result.to_dict()

    def test_force_reruns(self, store):
        store.run(TOY)
        outcome = store.run(TOY, force=True)
        assert not outcome.cached
        assert len(_TOY_CALLS) == 2

    def test_params_change_invalidates(self, store):
        assert content_key(TOY) != content_key(TOY, {"seed": 9})
        store.run(TOY)
        outcome = store.run(TOY, params={"seed": 9})
        assert not outcome.cached
        assert outcome.entry["seed"] == 9
        assert _TOY_CALLS == [7, 9]

    def test_manifest_key_mismatch_invalidates(self, store):
        store.run(TOY)
        manifest = store.load_manifest()
        manifest["entries"]["toy"]["key"] = "stale"
        store._write_manifest(manifest)
        assert store.cached_entry(TOY) is None
        assert not store.run(TOY).cached

    def test_missing_artifact_invalidates(self, store):
        store.run(TOY)
        store.artifact_path("toy").unlink()
        assert store.cached_entry(TOY) is None

    def test_failing_result_recorded_as_fail(self, store):
        def run_bad():
            """bad"""
            return ExperimentResult(
                "bad", "d", shape_checks={"broken": False}
            )

        bad = RegisteredExperiment(
            "bad", run_bad, title="Bad", anchor="X", module=__name__
        )
        outcome = store.run(bad)
        assert not outcome.passed
        entry = store.entries()["bad"]
        assert entry["status"] == "fail"
        assert entry["failed_checks"] == ["broken"]

    def test_run_many_serial_mixes_cache_and_fresh(self, store):
        store.run(TOY)
        lines = []
        outcomes = store.run_many([TOY], log=lines.append)
        assert [o.cached for o in outcomes] == [True]
        assert "cached" in lines[0]
        assert len(_TOY_CALLS) == 1


class TestCli:
    def test_run_all_filter_smoke(self, tmp_path, capsys):
        results = tmp_path / "results"
        md = tmp_path / "EXPERIMENTS.md"
        argv = [
            "run-all", "--filter", "figure1",
            "--results-dir", str(results), "--experiments-md", str(md),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[  pass] figure1" in out
        assert (results / "manifest.json").exists()
        assert (results / "artifacts" / "figure1.json").exists()
        text = md.read_text(encoding="utf-8")
        assert "`figure1`" in text and "✅ pass" in text
        # Unselected experiments still appear in the map, as not-run.
        assert "`figure3`" in text and "⏳ not run" in text

        # Second invocation: cache hit, reported as cached.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[cached] figure1" in out
        assert "1 cached" in out

    def test_run_all_parallel_jobs(self, tmp_path, capsys):
        assert main([
            "run-all", "--filter", "figure1", "--filter", "lemma1",
            "--jobs", "2", "--results-dir", str(tmp_path / "results"),
            "--experiments-md", "-",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 experiments: 2 pass" in out
        store = ArtifactStore(tmp_path / "results")
        assert set(store.entries()) == {"figure1", "lemma1"}

    def test_run_all_unknown_filter(self, tmp_path, capsys):
        assert main([
            "run-all", "--filter", "nonsense",
            "--results-dir", str(tmp_path / "results"),
        ]) == 2

    def test_run_all_partially_unknown_filter_refuses(self, tmp_path, capsys):
        # A typo next to a valid token must not silently validate less
        # than the user asked for.
        assert main([
            "run-all", "--filter", "figure1", "--filter", "theorm2",
            "--results-dir", str(tmp_path / "results"),
        ]) == 2
        assert "theorm2" in capsys.readouterr().err

    def test_report_tolerates_missing_artifact(self, tmp_path, capsys):
        results = tmp_path / "results"
        md = tmp_path / "EXPERIMENTS.md"
        assert main([
            "run-all", "--filter", "figure1",
            "--results-dir", str(results), "--experiments-md", str(md),
        ]) == 0
        (results / "artifacts" / "figure1.json").unlink()
        capsys.readouterr()
        assert main([
            "report", "--results-dir", str(results), "--output", str(md),
        ]) == 0
        text = md.read_text(encoding="utf-8")
        assert "`figure1`" in text and "✅" not in text  # stale → not run

    def test_run_all_list(self, tmp_path, capsys):
        assert main(["run-all", "--filter", "theorem", "--list"]) == 0
        out = capsys.readouterr().out
        assert "theorem1" in out and "theorem5" in out

    def test_report_without_running(self, tmp_path, capsys):
        results = tmp_path / "results"
        md = tmp_path / "EXPERIMENTS.md"
        assert main([
            "report", "--results-dir", str(results), "--output", str(md),
        ]) == 0
        text = md.read_text(encoding="utf-8")
        # Nothing stored: every registered experiment is listed, not run.
        assert "`figure1`" in text and "✅" not in text


class TestTraceStore:
    """ArtifactStore's telemetry-trace shelf (``<root>/traces/``)."""

    def _tiny_trace(self):
        from repro.chaos.telemetry import TelemetryTrace

        viol = np.zeros((4, 2), dtype=bool)
        viol[1, 0] = viol[2, 0] = True
        return TelemetryTrace(
            epochs=4, n_replicas=2, epsilon=0.5, epsilon_prime=0.1,
            layer_sizes=(3, 2), process_kinds=("Toy",),
            detector_names=("threshold",), policy_name="none",
            epochs_chunk=2, block_sizes=(2,),
            viol=viol, down=np.zeros((4, 2), dtype=bool),
            alarms={"threshold": viol.copy()},
            errors=np.linspace(0.0, 0.7, 8).reshape(4, 2),
            spec_payload={"spec": "chaos"},
        )

    def test_save_load_round_trip(self, store):
        trace = self._tiny_trace()
        path = store.save_trace("incident_replay", trace)
        assert path == store.trace_path("incident_replay")
        assert path.exists()
        assert path.with_suffix(".npz").exists()
        assert path.parent == store.trace_dir
        loaded = store.load_trace("incident_replay")
        assert trace.equals(loaded)
        assert loaded.spec_payload == {"spec": "chaos"}

    def test_missing_trace_raises(self, store):
        with pytest.raises(FileNotFoundError):
            store.load_trace("never_recorded")


def _hammer_store(args):
    """Subprocess body: interleave run-result writes and cache bumps."""
    root, worker_id, n_updates = args
    store = ArtifactStore(root)
    for i in range(n_updates):
        store.save_run_result(
            f"w{worker_id}-{i:02d}", {"kind": "campaign", "i": i}
        )
        store.update_manifest(
            lambda m: ArtifactStore._bump_cache(m, hits=1)
        )
    return worker_id


class TestConcurrentManifestWrites:
    """Multi-client safety: parallel writers never corrupt or lose
    manifest updates (the service daemon's store is shared by design)."""

    N_WORKERS = 4
    N_UPDATES = 8

    def test_parallel_writers_lose_no_updates(self, tmp_path):
        from concurrent.futures import ProcessPoolExecutor

        root = str(tmp_path / "results")
        jobs = [
            (root, w, self.N_UPDATES) for w in range(self.N_WORKERS)
        ]
        with ProcessPoolExecutor(max_workers=self.N_WORKERS) as pool:
            done = list(pool.map(_hammer_store, jobs))
        assert sorted(done) == list(range(self.N_WORKERS))

        store = ArtifactStore(root)
        # The manifest is valid JSON (atomic rename: never torn) ...
        manifest = json.loads(store.manifest_path.read_text())
        # ... indexes every run from every worker (no lost updates) ...
        expected = self.N_WORKERS * self.N_UPDATES
        assert len(manifest["runs"]) == expected
        # ... and the read-modify-write counters add up exactly.
        assert manifest["cache"]["hits"] == expected
        for worker in range(self.N_WORKERS):
            for i in range(self.N_UPDATES):
                assert store.load_run_result(f"w{worker}-{i:02d}") == {
                    "kind": "campaign", "i": i,
                }

    def test_lock_times_out_instead_of_hanging(self, tmp_path):
        from repro.artifacts import LOCK_NAME, _file_lock

        lock = tmp_path / LOCK_NAME
        lock.write_text("held\n")
        with pytest.raises(TimeoutError, match="manifest lock"):
            with _file_lock(lock, timeout=0.05):
                pass  # pragma: no cover - lock is held

    def test_stale_lock_is_stolen(self, tmp_path):
        import os

        from repro.artifacts import LOCK_NAME, _file_lock

        lock = tmp_path / LOCK_NAME
        lock.write_text("crashed\n")
        old = lock.stat().st_mtime - 120
        os.utime(lock, (old, old))
        with _file_lock(lock, timeout=1.0, stale_after=60.0):
            assert lock.exists()  # we own the recreated lock
        assert not lock.exists()
