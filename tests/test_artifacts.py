"""The artifact store: manifest round-trip, caching, CLI pipeline.

A toy registered experiment (module-level, so ``inspect.getsource``
works for the content key) counts its executions — the cache tests
assert *skips*, not just equal results.
"""

import json

import numpy as np
import pytest

from repro.artifacts import ArtifactStore, content_key
from repro.cli import main
from repro.experiments.registry import RegisteredExperiment
from repro.experiments.runner import ExperimentResult, jsonable

_TOY_CALLS = []


def _run_toy(seed: int = 7):
    """Toy experiment used by the store tests."""
    _TOY_CALLS.append(seed)
    return ExperimentResult(
        experiment_id="toy",
        description="toy experiment",
        rows=[{"a": 1.5, "pair": (1, 2), "np": np.float64(0.25)}],
        shape_checks={"ok": True},
        metrics={"m": np.float32(2.0)},
        notes=["a note"],
    )


TOY = RegisteredExperiment(
    "toy", _run_toy, title="Toy", anchor="Toy anchor", tags=("toy",),
    runtime="fast", order=1, module=__name__,
)


@pytest.fixture
def store(tmp_path):
    _TOY_CALLS.clear()
    return ArtifactStore(tmp_path / "results")


class TestJsonable:
    def test_lowering(self):
        assert jsonable((1, 2)) == [1, 2]
        assert jsonable(np.float64(1.5)) == 1.5
        assert jsonable(np.array([1, 2])) == [1, 2]
        assert jsonable({"k": np.int64(3)}) == {"k": 3}
        assert jsonable(float("inf")) == "inf"

    def test_nonfinite_metrics_round_trip_and_render(self):
        import math

        from repro.analysis.reporting import result_to_markdown

        r = ExperimentResult(
            "nf", "d", metrics={"i": float("inf"), "n": float("nan")},
            shape_checks={"ok": True},
        )
        back = ExperimentResult.from_dict(json.loads(json.dumps(r.to_dict())))
        assert back.metrics["i"] == float("inf")
        assert math.isnan(back.metrics["n"])
        assert "inf" in back.report()  # formatting must not raise
        assert "inf" in result_to_markdown(back)

    def test_result_round_trip(self):
        result = _run_toy()
        payload = json.loads(json.dumps(result.to_dict()))
        back = ExperimentResult.from_dict(payload)
        assert back.experiment_id == "toy"
        assert back.shape_checks == {"ok": True}
        assert back.passed
        assert back.rows[0]["pair"] == [1, 2]  # tuples come back as lists
        assert back.metrics["m"] == 2.0
        assert back.notes == ["a note"]


class TestStore:
    def test_run_persists_artifact_and_manifest(self, store):
        outcome = store.run(TOY)
        assert not outcome.cached and outcome.passed
        assert store.artifact_path("toy").exists()
        entry = store.entries()["toy"]
        assert entry["status"] == "pass"
        assert entry["failed_checks"] == []
        assert entry["seed"] == 7  # lifted from the entry point's default
        assert entry["dtype"] == "float64"
        assert entry["key"] == content_key(TOY)
        assert entry["wall_time_s"] >= 0
        assert entry["anchor"] == "Toy anchor"
        loaded = store.load_result("toy")
        assert loaded.to_dict() == outcome.result.to_dict()

    def test_second_run_is_a_cache_hit(self, store):
        first = store.run(TOY)
        outcome = store.run(TOY)
        assert outcome.cached
        assert len(_TOY_CALLS) == 1  # the function did not execute again
        assert outcome.result.to_dict() == first.result.to_dict()

    def test_force_reruns(self, store):
        store.run(TOY)
        outcome = store.run(TOY, force=True)
        assert not outcome.cached
        assert len(_TOY_CALLS) == 2

    def test_params_change_invalidates(self, store):
        assert content_key(TOY) != content_key(TOY, {"seed": 9})
        store.run(TOY)
        outcome = store.run(TOY, params={"seed": 9})
        assert not outcome.cached
        assert outcome.entry["seed"] == 9
        assert _TOY_CALLS == [7, 9]

    def test_manifest_key_mismatch_invalidates(self, store):
        store.run(TOY)
        manifest = store.load_manifest()
        manifest["entries"]["toy"]["key"] = "stale"
        store._write_manifest(manifest)
        assert store.cached_entry(TOY) is None
        assert not store.run(TOY).cached

    def test_missing_artifact_invalidates(self, store):
        store.run(TOY)
        store.artifact_path("toy").unlink()
        assert store.cached_entry(TOY) is None

    def test_failing_result_recorded_as_fail(self, store):
        def run_bad():
            """bad"""
            return ExperimentResult(
                "bad", "d", shape_checks={"broken": False}
            )

        bad = RegisteredExperiment(
            "bad", run_bad, title="Bad", anchor="X", module=__name__
        )
        outcome = store.run(bad)
        assert not outcome.passed
        entry = store.entries()["bad"]
        assert entry["status"] == "fail"
        assert entry["failed_checks"] == ["broken"]

    def test_run_many_serial_mixes_cache_and_fresh(self, store):
        store.run(TOY)
        lines = []
        outcomes = store.run_many([TOY], log=lines.append)
        assert [o.cached for o in outcomes] == [True]
        assert "cached" in lines[0]
        assert len(_TOY_CALLS) == 1


class TestCli:
    def test_run_all_filter_smoke(self, tmp_path, capsys):
        results = tmp_path / "results"
        md = tmp_path / "EXPERIMENTS.md"
        argv = [
            "run-all", "--filter", "figure1",
            "--results-dir", str(results), "--experiments-md", str(md),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[  pass] figure1" in out
        assert (results / "manifest.json").exists()
        assert (results / "artifacts" / "figure1.json").exists()
        text = md.read_text(encoding="utf-8")
        assert "`figure1`" in text and "✅ pass" in text
        # Unselected experiments still appear in the map, as not-run.
        assert "`figure3`" in text and "⏳ not run" in text

        # Second invocation: cache hit, reported as cached.
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "[cached] figure1" in out
        assert "1 cached" in out

    def test_run_all_parallel_jobs(self, tmp_path, capsys):
        assert main([
            "run-all", "--filter", "figure1", "--filter", "lemma1",
            "--jobs", "2", "--results-dir", str(tmp_path / "results"),
            "--experiments-md", "-",
        ]) == 0
        out = capsys.readouterr().out
        assert "2 experiments: 2 pass" in out
        store = ArtifactStore(tmp_path / "results")
        assert set(store.entries()) == {"figure1", "lemma1"}

    def test_run_all_unknown_filter(self, tmp_path, capsys):
        assert main([
            "run-all", "--filter", "nonsense",
            "--results-dir", str(tmp_path / "results"),
        ]) == 2

    def test_run_all_partially_unknown_filter_refuses(self, tmp_path, capsys):
        # A typo next to a valid token must not silently validate less
        # than the user asked for.
        assert main([
            "run-all", "--filter", "figure1", "--filter", "theorm2",
            "--results-dir", str(tmp_path / "results"),
        ]) == 2
        assert "theorm2" in capsys.readouterr().err

    def test_report_tolerates_missing_artifact(self, tmp_path, capsys):
        results = tmp_path / "results"
        md = tmp_path / "EXPERIMENTS.md"
        assert main([
            "run-all", "--filter", "figure1",
            "--results-dir", str(results), "--experiments-md", str(md),
        ]) == 0
        (results / "artifacts" / "figure1.json").unlink()
        capsys.readouterr()
        assert main([
            "report", "--results-dir", str(results), "--output", str(md),
        ]) == 0
        text = md.read_text(encoding="utf-8")
        assert "`figure1`" in text and "✅" not in text  # stale → not run

    def test_run_all_list(self, tmp_path, capsys):
        assert main(["run-all", "--filter", "theorem", "--list"]) == 0
        out = capsys.readouterr().out
        assert "theorem1" in out and "theorem5" in out

    def test_report_without_running(self, tmp_path, capsys):
        results = tmp_path / "results"
        md = tmp_path / "EXPERIMENTS.md"
        assert main([
            "report", "--results-dir", str(results), "--output", str(md),
        ]) == 0
        text = md.read_text(encoding="utf-8")
        # Nothing stored: every registered experiment is listed, not run.
        assert "`figure1`" in text and "✅" not in text
