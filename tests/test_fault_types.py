"""Unit tests for the fault model hierarchy."""

import numpy as np
import pytest

from repro.faults.injector import apply_neuron_fault, static_fault_action
from repro.faults.types import (
    ByzantineFault,
    CrashFault,
    NoiseFault,
    OffsetFault,
    SignFlipFault,
    StuckAtFault,
    SynapseByzantineFault,
    SynapseCrashFault,
    SynapseNoiseFault,
)

NOMINAL = np.array([0.2, 0.8, 0.5])


class TestNeuronFaultModels:
    def test_crash_emits_zero(self):
        np.testing.assert_array_equal(CrashFault().apply(NOMINAL), 0.0)

    def test_byzantine_explicit_value(self):
        np.testing.assert_array_equal(
            ByzantineFault(value=3.0).apply(NOMINAL), 3.0
        )

    def test_byzantine_sentinel_is_signed_inf(self):
        assert np.all(np.isposinf(ByzantineFault().apply(NOMINAL)))
        assert np.all(np.isneginf(ByzantineFault(sign=-1).apply(NOMINAL)))

    def test_byzantine_sign_validation(self):
        with pytest.raises(ValueError):
            ByzantineFault(sign=2)

    def test_stuck_at(self):
        np.testing.assert_array_equal(StuckAtFault(0.7).apply(NOMINAL), 0.7)

    def test_offset(self):
        np.testing.assert_allclose(
            OffsetFault(offset=0.1).apply(NOMINAL), NOMINAL + 0.1
        )

    def test_sign_flip(self):
        np.testing.assert_allclose(SignFlipFault().apply(NOMINAL), -NOMINAL)

    def test_noise_statistics(self):
        rng = np.random.default_rng(0)
        fault = NoiseFault(sigma=0.5)
        big = fault.apply(np.zeros(20000), rng=rng)
        assert abs(big.mean()) < 0.02
        assert abs(big.std() - 0.5) < 0.02

    def test_noise_sigma_validation(self):
        with pytest.raises(ValueError):
            NoiseFault(sigma=-1.0)

    def test_fault_models_hashable(self):
        assert len({CrashFault(), CrashFault(), ByzantineFault()}) == 2


class TestSynapseFaultModels:
    def test_crash_delivers_zero(self):
        np.testing.assert_array_equal(SynapseCrashFault().apply(NOMINAL), 0.0)

    def test_byzantine_offset(self):
        np.testing.assert_allclose(
            SynapseByzantineFault(offset=0.3).apply(NOMINAL), NOMINAL + 0.3
        )

    def test_byzantine_saturates_against_capacity(self):
        """Regression: offset=None used to return nominal +- inf; under
        unbounded capacity nothing clipped it downstream and campaign
        errors went inf/NaN.  It now saturates to the Lemma-2 worst
        case when the capacity is known, and raises loudly otherwise."""
        out = SynapseByzantineFault().apply(NOMINAL, capacity=0.4)
        np.testing.assert_allclose(out, NOMINAL + 0.4)
        out = SynapseByzantineFault(sign=-1).apply(NOMINAL, capacity=0.4)
        np.testing.assert_allclose(out, NOMINAL - 0.4)
        assert np.all(np.isfinite(out))

    def test_byzantine_sentinel_rejected_without_capacity(self):
        with pytest.raises(ValueError, match="unbounded"):
            SynapseByzantineFault().apply(NOMINAL)

    def test_noise(self):
        rng = np.random.default_rng(1)
        out = SynapseNoiseFault(sigma=0.1).apply(NOMINAL, rng=rng)
        assert out.shape == NOMINAL.shape
        assert not np.array_equal(out, NOMINAL)


class TestStaticFaultAction:
    def test_crash(self):
        assert static_fault_action(CrashFault()) == ("zero", 0.0)

    def test_byzantine_explicit(self):
        assert static_fault_action(ByzantineFault(value=2.0)) == ("set", 2.0)

    def test_byzantine_sentinel(self):
        kind, v = static_fault_action(ByzantineFault(sign=-1))
        assert kind == "add" and np.isneginf(v)

    def test_stuck_and_offset(self):
        assert static_fault_action(StuckAtFault(0.3)) == ("set", 0.3)
        assert static_fault_action(OffsetFault(offset=-0.2)) == ("add", -0.2)

    def test_dynamic_faults_are_not_static(self):
        assert static_fault_action(NoiseFault()) is None
        assert static_fault_action(SignFlipFault()) is None


class TestApplyNeuronFault:
    """The deviation-bounded semantics (Theorem 2's y + lambda model)."""

    def test_crash_is_exactly_zero_even_with_tiny_capacity(self):
        out = apply_neuron_fault(CrashFault(), NOMINAL, capacity=0.01)
        np.testing.assert_array_equal(out, 0.0)

    def test_byzantine_sentinel_deviates_by_capacity(self):
        out = apply_neuron_fault(ByzantineFault(), NOMINAL, capacity=0.5)
        np.testing.assert_allclose(out, NOMINAL + 0.5)
        out = apply_neuron_fault(ByzantineFault(sign=-1), NOMINAL, capacity=0.5)
        np.testing.assert_allclose(out, NOMINAL - 0.5)

    def test_explicit_value_clipped_to_deviation_band(self):
        # Requesting -10 from nominal 0.8 under C=1: emission 0.8 - 1 = -0.2.
        out = apply_neuron_fault(
            ByzantineFault(value=-10.0), np.array([0.8]), capacity=1.0
        )
        assert out[0] == pytest.approx(-0.2)

    def test_explicit_value_within_band_passes_through(self):
        out = apply_neuron_fault(
            ByzantineFault(value=0.9), np.array([0.5]), capacity=1.0
        )
        assert out[0] == pytest.approx(0.9)

    def test_unbounded_capacity_passes_any_value(self):
        out = apply_neuron_fault(
            ByzantineFault(value=1e9), np.array([0.5]), capacity=None
        )
        assert out[0] == 1e9

    def test_unbounded_capacity_rejects_sentinel(self):
        with pytest.raises(ValueError, match="unbounded"):
            apply_neuron_fault(ByzantineFault(), NOMINAL, capacity=None)

    def test_deviation_never_exceeds_capacity(self):
        rng = np.random.default_rng(2)
        for fault in (
            ByzantineFault(),
            ByzantineFault(value=5.0),
            StuckAtFault(-3.0),
            NoiseFault(sigma=10.0),
            SignFlipFault(),
            OffsetFault(offset=99.0),
        ):
            out = apply_neuron_fault(fault, NOMINAL, capacity=0.3, rng=rng)
            assert np.all(np.abs(out - NOMINAL) <= 0.3 + 1e-12)
