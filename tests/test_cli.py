"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.network import build_mlp, save_network


@pytest.fixture
def saved_net(tmp_path):
    net = build_mlp(
        2, [8, 6], activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1}, output_scale=0.05, seed=40,
    )
    return str(save_network(net, tmp_path / "net.npz"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.command == "experiments" and args.names == []

    def test_certify_requires_epsilons(self, saved_net):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["certify", saved_net])


class TestCommands:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "theorem2" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "nope"]) == 2

    def test_experiments_single(self, capsys):
        assert main(["experiments", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "PASS" in out

    def test_certify(self, saved_net, capsys):
        code = main(
            ["certify", saved_net, "--epsilon", "0.5", "--epsilon-prime", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RobustnessCertificate" in out

    def test_certify_byzantine(self, saved_net, capsys):
        code = main(
            [
                "certify", saved_net, "--epsilon", "0.5",
                "--epsilon-prime", "0.1", "--mode", "byzantine",
                "--capacity", "1.0",
            ]
        )
        assert code == 0

    def test_inspect(self, saved_net, capsys):
        assert main(["inspect", saved_net]) == 0
        out = capsys.readouterr().out
        assert "FeedForwardNetwork" in out and "DAG: True" in out

    def test_survival(self, saved_net, capsys):
        code = main(
            [
                "survival", saved_net, "--p-fail", "0.05",
                "--epsilon", "0.5", "--epsilon-prime", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certified P" in out

    def test_campaign_monte_carlo(self, saved_net, capsys):
        code = main(
            [
                "campaign", saved_net, "--distribution", "2,1",
                "--n-scenarios", "200", "--batch", "8", "--seed", "3",
                "--threshold", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CampaignResult(n=200" in out
        assert "fraction exceeding" in out

    def test_campaign_exhaustive(self, saved_net, capsys):
        code = main(
            ["campaign", saved_net, "--exhaustive", "1", "--batch", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "14 configurations" in out and "CampaignResult(n=14" in out

    def test_campaign_float32_and_faults(self, saved_net, capsys):
        for fault in ("byzantine", "stuck"):
            code = main(
                [
                    "campaign", saved_net, "--distribution", "1,1",
                    "--n-scenarios", "50", "--batch", "4",
                    "--dtype", "float32", "--fault", fault,
                ]
            )
            assert code == 0

    def test_campaign_full_fault_taxonomy(self, saved_net, capsys):
        """Every fault model in the taxonomy runs from the CLI — the
        stochastic and synapse kinds included (synapse faults read the
        distribution as per-stage counts, length L+1)."""
        cases = (
            ("noise", "1,1"),
            ("intermittent", "1,1"),
            ("sign-flip", "1,1"),
            ("offset", "1,1"),
            ("synapse-crash", "1,1,1"),
            ("synapse-byzantine", "1,1,1"),
            ("synapse-noise", "1,1,1"),
        )
        for fault, dist in cases:
            code = main(
                [
                    "campaign", saved_net, "--distribution", dist,
                    "--n-scenarios", "30", "--batch", "4",
                    "--fault", fault, "--sigma", "0.05",
                ]
            )
            assert code == 0, fault
            assert "CampaignResult(n=30" in capsys.readouterr().out

    def test_campaign_synapse_distribution_length_checked(
        self, saved_net, capsys
    ):
        code = main(
            [
                "campaign", saved_net, "--distribution", "1,1",
                "--fault", "synapse-crash", "--n-scenarios", "5",
                "--batch", "2",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_campaign_bad_distribution(self, saved_net, capsys):
        assert main(
            ["campaign", saved_net, "--distribution", "a,b"]
        ) == 2

    def test_campaign_requires_mode(self, saved_net):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["campaign", saved_net])
