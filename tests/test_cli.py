"""Unit tests for the command-line interface."""

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.network import build_mlp, save_network


@pytest.fixture
def saved_net(tmp_path):
    net = build_mlp(
        2, [8, 6], activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1}, output_scale=0.05, seed=40,
    )
    return str(save_network(net, tmp_path / "net.npz"))


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiments_defaults(self):
        args = build_parser().parse_args(["experiments"])
        assert args.command == "experiments" and args.names == []

    def test_certify_requires_epsilons(self, saved_net):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["certify", saved_net])


class TestCommands:
    def test_experiments_list(self, capsys):
        assert main(["experiments", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure3" in out and "theorem2" in out

    def test_experiments_unknown_name(self, capsys):
        assert main(["experiments", "nope"]) == 2

    def test_experiments_single(self, capsys):
        assert main(["experiments", "figure2"]) == 0
        out = capsys.readouterr().out
        assert "figure2" in out and "PASS" in out

    def test_certify(self, saved_net, capsys):
        code = main(
            ["certify", saved_net, "--epsilon", "0.5", "--epsilon-prime", "0.1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "RobustnessCertificate" in out

    def test_certify_byzantine(self, saved_net, capsys):
        code = main(
            [
                "certify", saved_net, "--epsilon", "0.5",
                "--epsilon-prime", "0.1", "--mode", "byzantine",
                "--capacity", "1.0",
            ]
        )
        assert code == 0

    def test_inspect(self, saved_net, capsys):
        assert main(["inspect", saved_net]) == 0
        out = capsys.readouterr().out
        assert "FeedForwardNetwork" in out and "DAG: True" in out

    def test_survival(self, saved_net, capsys):
        code = main(
            [
                "survival", saved_net, "--p-fail", "0.05",
                "--epsilon", "0.5", "--epsilon-prime", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "certified P" in out

    def test_campaign_monte_carlo(self, saved_net, capsys):
        code = main(
            [
                "campaign", saved_net, "--distribution", "2,1",
                "--n-scenarios", "200", "--batch", "8", "--seed", "3",
                "--threshold", "0.4",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CampaignResult(n=200" in out
        assert "fraction exceeding" in out

    def test_campaign_exhaustive(self, saved_net, capsys):
        code = main(
            ["campaign", saved_net, "--exhaustive", "1", "--batch", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "14 configurations" in out and "CampaignResult(n=14" in out

    def test_campaign_float32_and_faults(self, saved_net, capsys):
        for fault in ("byzantine", "stuck"):
            code = main(
                [
                    "campaign", saved_net, "--distribution", "1,1",
                    "--n-scenarios", "50", "--batch", "4",
                    "--dtype", "float32", "--fault", fault,
                ]
            )
            assert code == 0

    def test_campaign_full_fault_taxonomy(self, saved_net, capsys):
        """Every fault model in the taxonomy runs from the CLI — the
        stochastic and synapse kinds included (synapse faults read the
        distribution as per-stage counts, length L+1)."""
        cases = (
            ("noise", "1,1"),
            ("intermittent", "1,1"),
            ("sign-flip", "1,1"),
            ("offset", "1,1"),
            ("synapse-crash", "1,1,1"),
            ("synapse-byzantine", "1,1,1"),
            ("synapse-noise", "1,1,1"),
        )
        for fault, dist in cases:
            code = main(
                [
                    "campaign", saved_net, "--distribution", dist,
                    "--n-scenarios", "30", "--batch", "4",
                    "--fault", fault, "--sigma", "0.05",
                ]
            )
            assert code == 0, fault
            assert "CampaignResult(n=30" in capsys.readouterr().out

    def test_campaign_backends(self, saved_net, capsys):
        """Every engine tier runs from the CLI."""
        for backend in ("numpy", "threaded", "quantized-int8", "float16"):
            code = main(
                [
                    "campaign", saved_net, "--distribution", "1,1",
                    "--n-scenarios", "60", "--batch", "4", "--seed", "5",
                    "--backend", backend,
                ]
            )
            assert code == 0, backend
            assert "CampaignResult(n=60" in capsys.readouterr().out

    def test_campaign_profile_prints_phase_table(self, saved_net, capsys):
        code = main(
            [
                "campaign", saved_net, "--distribution", "1,1",
                "--n-scenarios", "40", "--batch", "4", "--profile",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("sampling", "compile", "gemm", "corrections",
                      "reduction", "total"):
            assert phase in out

    def test_campaign_dump_spec_carries_backend(self, saved_net, capsys):
        code = main(
            [
                "campaign", saved_net, "--distribution", "1,1",
                "--n-scenarios", "40", "--backend", "float16",
                "--dump-spec",
            ]
        )
        assert code == 0
        payload = __import__("json").loads(capsys.readouterr().out)
        assert payload["engine"]["backend"] == "float16"

    def test_campaign_synapse_distribution_length_checked(
        self, saved_net, capsys
    ):
        code = main(
            [
                "campaign", saved_net, "--distribution", "1,1",
                "--fault", "synapse-crash", "--n-scenarios", "5",
                "--batch", "2",
            ]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_campaign_bad_distribution(self, saved_net, capsys):
        assert main(
            ["campaign", saved_net, "--distribution", "a,b"]
        ) == 2

    def test_campaign_requires_mode(self, saved_net, capsys):
        """Without --spec, one of --distribution/--exhaustive is still
        required — the check moved from argparse into the spec builder."""
        assert main(["campaign", saved_net]) == 2
        err = capsys.readouterr().err
        assert "--distribution" in err and "--exhaustive" in err

    def test_chaos_default_run(self, saved_net, capsys):
        code = main(
            [
                "chaos", saved_net, "--epsilon", "0.5",
                "--epsilon-prime", "0.1", "--epochs", "12",
                "--replicas", "8", "--rate", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ChaosReport(replicas=8, epochs=12" in out
        assert "availability" in out and "MTBF" in out
        assert "detector threshold" in out

    def test_chaos_policies_and_processes(self, saved_net, capsys):
        cases = (
            ["--policy", "rejuvenate", "--period", "4",
             "--process", "poisson"],
            ["--policy", "repair", "--process", "bursts",
             "--detector", "cusum"],
            ["--policy", "spare", "--spares", "2", "--process", "blasts",
             "--traffic", "bursty"],
            ["--process", "weibull", "--traffic", "diurnal",
             "--detector", "certified", "--workers", "2"],
        )
        for extra in cases:
            code = main(
                [
                    "chaos", saved_net, "--epsilon", "0.5",
                    "--epsilon-prime", "0.1", "--epochs", "10",
                    "--replicas", "6", "--rate", "0.1",
                ]
                + extra
            )
            assert code == 0, extra
            assert "ChaosReport" in capsys.readouterr().out


class TestArgumentHardening:
    """Invalid worker counts / epochs / rates die as argparse errors
    (exit code 2 with a clear message), across every command."""

    def _expect_argparse_error(self, capsys, argv, needle):
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        assert needle in capsys.readouterr().err

    def test_campaign_rejects_negative_workers(self, saved_net, capsys):
        self._expect_argparse_error(
            capsys,
            ["campaign", saved_net, "--distribution", "1,1",
             "--workers", "-1"],
            "worker count must be >= 0",
        )

    def test_run_all_rejects_negative_jobs(self, capsys):
        self._expect_argparse_error(
            capsys, ["run-all", "--jobs", "-3"], "worker count must be >= 0"
        )

    def test_chaos_rejects_negative_workers(self, saved_net, capsys):
        self._expect_argparse_error(
            capsys,
            ["chaos", saved_net, "--epsilon", "0.5", "--epsilon-prime",
             "0.1", "--workers", "-2"],
            "worker count must be >= 0",
        )

    def test_chaos_rejects_nonpositive_epochs(self, saved_net, capsys):
        for bad in ("-5", "0"):
            self._expect_argparse_error(
                capsys,
                ["chaos", saved_net, "--epsilon", "0.5",
                 "--epsilon-prime", "0.1", "--epochs", bad],
                "positive integer",
            )

    def test_chaos_rejects_negative_rate(self, saved_net, capsys):
        self._expect_argparse_error(
            capsys,
            ["chaos", saved_net, "--epsilon", "0.5", "--epsilon-prime",
             "0.1", "--rate", "-0.5"],
            "nonnegative",
        )

    def test_campaign_rejects_nonpositive_scenario_counts(
        self, saved_net, capsys
    ):
        self._expect_argparse_error(
            capsys,
            ["campaign", saved_net, "--distribution", "1,1",
             "--n-scenarios", "0"],
            "positive integer",
        )
        self._expect_argparse_error(
            capsys,
            ["campaign", saved_net, "--distribution", "1,1",
             "--chunk-size", "-8"],
            "positive integer",
        )

    def test_non_integer_worker_count(self, saved_net, capsys):
        self._expect_argparse_error(
            capsys,
            ["campaign", saved_net, "--distribution", "1,1",
             "--workers", "two"],
            "expected an integer",
        )
