"""CLI <-> spec parity: the argparse path IS the spec path.

For every ``campaign``/``survival``/``chaos`` example command in
README.md and EXPERIMENTS.md (sizes clamped so the suite stays fast),
assert that

* the argparse namespace lowers to a spec whose ``repro.run`` output is
  bit-identical to the legacy direct-kwargs wiring the CLI used to
  perform inline (same artifact content hash, same seeds);
* ``--dump-spec`` output reloads through ``--spec`` byte-identically.
"""

import hashlib
import shlex
from pathlib import Path

import numpy as np
import pytest

from repro import specs
from repro.cli import (
    _campaign_spec_from_args,
    _chaos_spec_from_args,
    _survival_spec_from_args,
    build_parser,
    main,
)
from repro.network import build_mlp, save_network

ROOT = Path(__file__).resolve().parent.parent

#: Clamps applied to documentation-scale flags (value = test ceiling).
_CLAMPS = {
    "--n-scenarios": 300,
    "--epochs": 10,
    "--replicas": 8,
    "--batch": 8,
}


def _doc_commands():
    """Every ``python -m repro campaign/survival/chaos ...`` example in
    README.md / EXPERIMENTS.md, with backslash continuations joined."""
    text = ""
    for name in ("README.md", "EXPERIMENTS.md"):
        text += (ROOT / name).read_text(encoding="utf-8") + "\n"
    joined, buf = [], ""
    for raw in text.splitlines():
        line = raw.strip()
        if buf:
            buf += " " + line.rstrip("\\").strip()
            if not line.endswith("\\"):
                joined.append(buf)
                buf = ""
            continue
        if line.startswith("python -m repro "):
            if line.endswith("\\"):
                buf = line.rstrip("\\").strip()
            else:
                joined.append(line)
    commands = []
    for line in joined:
        line = line.split("#")[0].split(">")[0].strip()
        argv = shlex.split(line)[3:]  # drop `python -m repro`
        if not argv or argv[0] not in ("campaign", "survival", "chaos"):
            continue
        if "--spec" in argv or "--dump-spec" in argv:
            # The spec-file round-trip examples are exercised by the
            # dedicated dump-spec tests below, not the parity harness.
            continue
        commands.append(argv)
    return commands


DOC_COMMANDS = _doc_commands()


def _clamped(argv, network_path):
    out = []
    it = iter(argv)
    for token in it:
        if token.endswith(".npz"):
            out.append(network_path)
        elif token in _CLAMPS:
            value = next(it)
            out.extend([token, str(min(int(value), _CLAMPS[token]))])
        else:
            out.append(token)
    return out


@pytest.fixture(scope="module")
def saved_net(tmp_path_factory):
    net = build_mlp(
        2, [8, 6], activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1}, output_scale=0.05, seed=40,
    )
    return str(save_network(net, tmp_path_factory.mktemp("nets") / "net.npz"))


def _legacy_campaign(args):
    """The pre-spec CLI wiring, verbatim: the parity reference."""
    from repro.faults.campaign import (
        _monte_carlo_campaign,
        exhaustive_crash_campaign,
    )
    from repro.faults.injector import FaultInjector
    from repro.faults.types import (
        ByzantineFault,
        CrashFault,
        IntermittentFault,
        NoiseFault,
        OffsetFault,
        SignFlipFault,
        StuckAtFault,
        SynapseByzantineFault,
        SynapseCrashFault,
        SynapseNoiseFault,
    )
    from repro.network.serialization import load_network

    network = load_network(args.network)
    capacity = (
        args.capacity if args.capacity is not None else network.output_bound
    )
    injector = FaultInjector(network, capacity=capacity)
    x = np.random.default_rng(args.seed).random(
        (max(1, args.batch), network.input_dim)
    )
    if args.exhaustive is not None:
        return exhaustive_crash_campaign(
            injector, x, args.exhaustive,
            chunk_size=args.chunk_size, n_workers=args.workers,
            dtype=args.dtype,
        )
    distribution = tuple(int(v) for v in args.distribution.split(","))
    value = args.value if args.value is not None else 1.0
    fault = {
        "crash": CrashFault(),
        "byzantine": ByzantineFault(value=args.value),
        "stuck": StuckAtFault(value=value),
        "offset": OffsetFault(offset=value),
        "noise": NoiseFault(sigma=args.sigma),
        "intermittent": IntermittentFault(p=args.p_transient),
        "sign-flip": SignFlipFault(),
        "synapse-crash": SynapseCrashFault(),
        "synapse-byzantine": SynapseByzantineFault(offset=args.value),
        "synapse-noise": SynapseNoiseFault(sigma=args.sigma),
    }[args.fault or "crash"]
    return _monte_carlo_campaign(
        injector, x, distribution,
        n_scenarios=args.n_scenarios if args.n_scenarios is not None else 10_000,
        fault=fault, seed=args.seed, chunk_size=args.chunk_size,
        n_workers=args.workers, dtype=args.dtype,
    )


def _legacy_chaos(args):
    from repro.chaos import (
        CertifiedAlarmDetector,
        ComponentLifetimeProcess,
        ConstantTraffic,
        CorrelatedBlastProcess,
        CUSUMDetector,
        DetectorRepairPolicy,
        DiurnalTraffic,
        NoRepairPolicy,
        ParetoBurstyTraffic,
        PeriodicRejuvenationPolicy,
        PoissonArrivalProcess,
        SpareActivationPolicy,
        ThresholdDetector,
        TransientBurstProcess,
    )
    from repro.chaos.campaign import _run_chaos_campaign
    from repro.core.tolerance import greedy_max_total_failures
    from repro.network.serialization import load_network

    network = load_network(args.network)
    budget = args.epsilon - args.epsilon_prime
    x = np.random.default_rng(args.seed).random(
        (args.batch, network.input_dim)
    )
    process_factories = {
        "lifetime": lambda: ComponentLifetimeProcess(args.rate),
        "weibull": lambda: ComponentLifetimeProcess(
            args.rate, shape=max(args.weibull_shape, 1e-9)
        ),
        "poisson": lambda: PoissonArrivalProcess(args.rate),
        "bursts": lambda: TransientBurstProcess(min(args.rate, 1.0)),
        "blasts": lambda: CorrelatedBlastProcess(min(args.rate, 1.0)),
    }
    detector_factories = {
        "threshold": lambda: ThresholdDetector(budget),
        "cusum": lambda: CUSUMDetector(budget / 2.0, 2.0 * budget),
        "certified": lambda: CertifiedAlarmDetector(
            network, args.rate, args.epsilon, args.epsilon_prime,
            capacity=args.capacity,
        ),
    }
    if args.policy == "rejuvenate":
        policy = PeriodicRejuvenationPolicy(
            args.period,
            greedy_max_total_failures(network, args.epsilon, args.epsilon_prime),
        )
    elif args.policy == "repair":
        policy = DetectorRepairPolicy(latency=args.latency)
    elif args.policy == "spare":
        policy = SpareActivationPolicy(args.spares)
    else:
        policy = NoRepairPolicy()
    traffic = {
        "constant": ConstantTraffic,
        "diurnal": DiurnalTraffic,
        "bursty": ParetoBurstyTraffic,
    }[args.traffic]()
    return _run_chaos_campaign(
        network, x,
        [process_factories[n]() for n in (args.processes or ["lifetime"])],
        traffic=traffic,
        detectors=[
            detector_factories[n]() for n in (args.detectors or ["threshold"])
        ],
        policy=policy, epochs=args.epochs, n_replicas=args.replicas,
        epsilon=args.epsilon, epsilon_prime=args.epsilon_prime,
        capacity=args.capacity, seed=args.seed,
        epochs_chunk=args.epochs_chunk, n_workers=args.workers,
        dtype=args.dtype,
    )


def _errors_digest(result) -> str:
    return hashlib.sha256(
        np.ascontiguousarray(result.errors, dtype=np.float64).tobytes()
    ).hexdigest()


def _command_ids():
    return [" ".join(argv[:4]) for argv in DOC_COMMANDS]


def test_docs_actually_show_spec_backed_commands():
    """The satellite contract is vacuous if the docs lose their CLI
    examples; keep at least the campaign + chaos families visible."""
    verbs = {argv[0] for argv in DOC_COMMANDS}
    assert {"campaign", "chaos"} <= verbs


@pytest.mark.parametrize("argv", DOC_COMMANDS, ids=_command_ids())
def test_doc_example_argparse_equals_spec_path(argv, saved_net):
    argv = _clamped(argv, saved_net)
    args = build_parser().parse_args(argv)
    builder = {
        "campaign": _campaign_spec_from_args,
        "survival": _survival_spec_from_args,
        "chaos": _chaos_spec_from_args,
    }[argv[0]]
    spec = builder(args)
    # Same seeds: the spec records exactly what argparse carried (the
    # survival subcommand is seedless — the certified bound is exact).
    if hasattr(args, "seed"):
        assert spec.seed == args.seed

    outcome = specs.run(spec)
    if argv[0] == "campaign":
        legacy = _legacy_campaign(args)
        assert _errors_digest(outcome) == _errors_digest(legacy)
        np.testing.assert_array_equal(outcome.errors, legacy.errors)
    elif argv[0] == "survival":
        from repro.faults.reliability import certified_survival_probability
        from repro.network.serialization import load_network

        legacy = certified_survival_probability(
            load_network(args.network), args.p_fail, args.epsilon,
            args.epsilon_prime, mode=args.mode, capacity=args.capacity,
        )
        assert outcome == legacy
    else:
        legacy = _legacy_chaos(args)
        assert outcome.to_dict() == legacy.to_dict()


@pytest.mark.parametrize("argv", DOC_COMMANDS, ids=_command_ids())
def test_doc_example_dump_spec_round_trips_byte_identically(
    argv, saved_net, tmp_path, capsys
):
    argv = _clamped(argv, saved_net)
    assert main(argv + ["--dump-spec"]) == 0
    dumped = capsys.readouterr().out
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(dumped, encoding="utf-8")
    assert main([argv[0], "--spec", str(spec_file), "--dump-spec"]) == 0
    assert capsys.readouterr().out == dumped, (
        "--dump-spec must round-trip byte-identically through --spec"
    )


def test_spec_rejects_explicit_workload_flags(saved_net, tmp_path, capsys):
    """--spec owns the workload: an explicitly-typed workload flag next
    to it is an error, not a silent no-op."""
    argv = ["campaign", saved_net, "--distribution", "2,1",
            "--n-scenarios", "50", "--batch", "4"]
    assert main(argv + ["--dump-spec"]) == 0
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(capsys.readouterr().out, encoding="utf-8")
    assert main(
        ["campaign", "--spec", str(spec_file), "--n-scenarios", "500"]
    ) == 2
    assert "cannot be combined with --spec" in capsys.readouterr().err
    assert main(
        ["chaos", "--spec", str(spec_file), "--epsilon", "0.9"]
    ) == 2  # conflict check fires before the spec-type check
    capsys.readouterr()


def test_spec_file_actually_runs(saved_net, tmp_path, capsys):
    """`--spec FILE` executes the stored workload end to end."""
    argv = ["campaign", saved_net, "--distribution", "2,1",
            "--n-scenarios", "50", "--batch", "4"]
    assert main(argv + ["--dump-spec"]) == 0
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(capsys.readouterr().out, encoding="utf-8")
    assert main(["campaign", "--spec", str(spec_file)]) == 0
    assert "CampaignResult(n=50" in capsys.readouterr().out
