"""The experiment registry: completeness, metadata, selection.

The registry is the index of the reproduction — these tests enforce
that every experiment module registers itself (no silent drift between
the package contents and the registry) and that ``--filter`` selection
behaves as documented.
"""

import pkgutil

import pytest

import repro.experiments as exp_pkg
from repro.experiments import ALL_EXPERIMENTS, registry
from repro.experiments.registry import (
    RUNTIME_CLASSES,
    RegisteredExperiment,
    experiment,
)
from repro.experiments.runner import ExperimentResult


class TestCompleteness:
    def test_every_experiment_module_registers_something(self):
        by_module = {}
        for exp in registry.all_experiments():
            by_module.setdefault(exp.module.rsplit(".", 1)[-1], []).append(exp)
        for info in pkgutil.iter_modules(exp_pkg.__path__):
            if info.name.startswith(("exp_", "fig")):
                assert info.name in by_module, (
                    f"experiment module {info.name} registers no experiment "
                    "(missing @experiment decorator?)"
                )

    def test_at_least_the_seed_experiments_exist(self):
        assert len(registry.all_experiments()) >= 18

    def test_all_experiments_mirrors_registry(self):
        assert list(ALL_EXPERIMENTS) == registry.experiment_ids()
        for exp_id, fn in ALL_EXPERIMENTS.items():
            assert registry.get(exp_id).fn is fn

    def test_canonical_order_is_paper_order(self):
        ids = registry.experiment_ids()
        assert ids.index("figure1") < ids.index("theorem1")
        assert ids.index("theorem5") < ids.index("lemma1")
        orders = [exp.order for exp in registry.all_experiments()]
        assert orders == sorted(orders)


class TestMetadata:
    def test_metadata_populated(self):
        for exp in registry.all_experiments():
            assert exp.runtime in RUNTIME_CLASSES
            assert exp.anchor and exp.title
            assert exp.module.startswith("repro.experiments.")
            assert (exp.fn.__doc__ or "").strip(), (
                f"{exp.experiment_id}'s entry point has no docstring"
            )

    def test_command_names_the_id(self):
        for exp in registry.all_experiments():
            assert exp.experiment_id in exp.command
            assert exp.command.startswith("python -m repro run-all")


class TestSelection:
    def test_no_filter_selects_everything(self):
        assert registry.select(None) == registry.all_experiments()
        assert registry.select([]) == registry.all_experiments()

    def test_select_by_id(self):
        (exp,) = registry.select(["figure3"])
        assert exp.experiment_id == "figure3"

    def test_select_by_tag(self):
        ids = [e.experiment_id for e in registry.select(["theorem"])]
        assert ids == [
            "theorem1", "theorem2", "theorem3", "theorem4", "theorem5",
            # anchored at "Theorem 5 x Theorem 2" and "Theorem 2 audit"
            # — anchor substrings match
            "quantized_probes",
            "adaptive_sampling",
        ]

    def test_select_by_anchor_substring(self):
        ids = [e.experiment_id for e in registry.select(["corollary"])]
        assert "corollary1_overprovision" in ids
        assert "corollary2_boosting" in ids

    def test_select_union_of_tokens(self):
        ids = [
            e.experiment_id for e in registry.select(["figure1", "lemma1"])
        ]
        assert ids == ["figure1", "lemma1"]

    def test_select_by_runtime_class(self):
        slow = registry.select(["slow"])
        assert slow and all(e.runtime == "slow" for e in slow)

    def test_select_is_case_insensitive(self):
        assert registry.select(["FIGURE3"]) == registry.select(["figure3"])

    def test_blank_token_matches_nothing(self):
        assert registry.select(["  "]) == []

    def test_get_unknown_raises_with_known_ids(self):
        with pytest.raises(KeyError, match="figure3"):
            registry.get("nope")


class TestDecorator:
    @pytest.fixture
    def scratch_registry(self, monkeypatch):
        """Run decorator tests against a copy — never leak test ids."""
        import repro.experiments.registry as reg_mod

        monkeypatch.setattr(reg_mod, "_REGISTRY", dict(reg_mod._REGISTRY))
        return reg_mod

    def test_decorator_returns_fn_unchanged(self, scratch_registry):
        def run_probe():
            """probe"""
            return ExperimentResult("probe_id", "d")

        decorated = experiment(
            "probe_id", title="Probe", anchor="Nowhere", order=999999
        )(run_probe)
        assert decorated is run_probe
        assert scratch_registry._REGISTRY["probe_id"].fn is run_probe

    def test_duplicate_id_different_fn_rejected(self, scratch_registry):
        def run_a():
            """a"""

        def run_b():
            """b"""

        experiment("dup_id", title="A", anchor="X")(run_a)
        with pytest.raises(ValueError, match="duplicate experiment id"):
            experiment("dup_id", title="B", anchor="X")(run_b)

    def test_reregistering_same_fn_is_idempotent(self, scratch_registry):
        def run_c():
            """c"""

        experiment("idem_id", title="C", anchor="X")(run_c)
        experiment("idem_id", title="C", anchor="X")(run_c)
        assert scratch_registry._REGISTRY["idem_id"].fn is run_c

    def test_bad_runtime_rejected(self):
        with pytest.raises(ValueError, match="runtime"):
            experiment("x", title="X", anchor="X", runtime="warp")

    def test_missing_anchor_rejected(self):
        with pytest.raises(ValueError, match="anchor"):
            experiment("x", title="X", anchor="")

    def test_matches_predicate(self):
        exp = RegisteredExperiment(
            "my_exp", lambda: None, title="T", anchor="Theorem 9",
            tags=("tagged",),
        )
        assert exp.matches("my_exp")
        assert exp.matches("TAGGED")
        assert exp.matches("theorem 9")
        assert exp.matches("my_")
        assert not exp.matches("other")
        assert not exp.matches("")
