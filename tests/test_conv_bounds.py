"""Unit tests for the Section VI convolutional refinements."""

import numpy as np
import pytest

from repro.core.conv import (
    bound_reduction_factor,
    dense_equivalent_weight_maxes,
    max_fanout,
    receptive_field_fep,
)
from repro.core.fep import network_fep
from repro.faults.campaign import monte_carlo_campaign
from repro.faults.injector import FaultInjector
from repro.network import build_conv_net, build_mlp


@pytest.fixture
def conv_net():
    return build_conv_net(
        16, [3, 3], activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.5}, seed=0,
    )


class TestWeightMaxes:
    def test_conv_dense_equivalent_matches_kernel(self, conv_net):
        assert dense_equivalent_weight_maxes(conv_net) == conv_net.weight_maxes()

    def test_dense_network_consistent(self, small_net):
        assert dense_equivalent_weight_maxes(small_net) == small_net.weight_maxes()


class TestFanout:
    def test_conv_fanout_is_receptive_field(self, conv_net):
        assert max_fanout(conv_net, 1) == 3

    def test_last_layer_fans_to_output(self, conv_net):
        assert max_fanout(conv_net, conv_net.depth) == 1

    def test_dense_fanout_is_next_width(self, small_net):
        assert max_fanout(small_net, 1) == 6

    def test_bounds_checked(self, conv_net):
        with pytest.raises(ValueError):
            max_fanout(conv_net, 0)


class TestRefinedFep:
    def test_never_exceeds_generic(self, conv_net):
        for dist in [(1, 0), (2, 0), (1, 1), (0, 2)]:
            refined = receptive_field_fep(conv_net, dist, mode="crash")
            generic = network_fep(conv_net, dist, mode="crash")
            assert refined <= generic + 1e-12

    def test_strict_gap_for_single_early_failure(self, conv_net):
        # One layer-1 failure reaches at most R=3 of the 12 layer-2
        # neurons, so the refinement is strict.
        assert bound_reduction_factor(conv_net, (1, 0), mode="crash") > 1.0

    def test_degenerates_on_dense(self, small_net):
        for dist in [(1, 0), (2, 1), (0, 3)]:
            assert receptive_field_fep(small_net, dist, mode="crash") == (
                pytest.approx(network_fep(small_net, dist, mode="crash"))
            )

    def test_refined_bound_still_sound(self, conv_net, rng):
        x = rng.random((24, conv_net.input_dim))
        inj = FaultInjector(conv_net, capacity=conv_net.output_bound)
        dist = (2, 0)
        campaign = monte_carlo_campaign(inj, x, dist, n_scenarios=60, seed=0)
        assert campaign.max_error <= receptive_field_fep(
            conv_net, dist, mode="crash"
        ) + 1e-9

    def test_zero_distribution(self, conv_net):
        assert receptive_field_fep(conv_net, (0, 0), mode="crash") == 0.0
        assert bound_reduction_factor(conv_net, (0, 0), mode="crash") == 1.0

    def test_length_validation(self, conv_net):
        with pytest.raises(ValueError):
            receptive_field_fep(conv_net, (1,), mode="crash")
