"""Unit tests for network construction helpers."""

import numpy as np
import pytest

from repro.network.builder import (
    FIGURE3_SPECS,
    build_conv_net,
    build_figure3_network,
    build_mlp,
    figure3_architectures,
    random_network,
)
from repro.network.layers import Conv1DLayer


class TestBuildMLP:
    def test_shapes(self):
        net = build_mlp(4, [10, 5], seed=0)
        assert net.input_dim == 4 and net.layer_sizes == (10, 5)

    def test_seed_reproducibility(self):
        a = build_mlp(3, [6], seed=42)
        b = build_mlp(3, [6], seed=42)
        np.testing.assert_array_equal(a.layers[0].weights, b.layers[0].weights)
        np.testing.assert_array_equal(a.output_weights, b.output_weights)

    def test_different_seeds_differ(self):
        a = build_mlp(3, [6], seed=1)
        b = build_mlp(3, [6], seed=2)
        assert not np.array_equal(a.layers[0].weights, b.layers[0].weights)

    def test_output_scale_bounds_output_weights(self):
        net = build_mlp(2, [4], output_scale=0.1, seed=0)
        assert np.abs(net.output_weights).max() <= 0.1

    def test_uniform_init_bounds_all_stages(self):
        net = build_mlp(
            2, [4, 4], init={"name": "uniform", "scale": 0.2},
            output_scale=0.2, seed=0,
        )
        assert all(w <= 0.2 for w in net.weight_maxes())

    def test_empty_hidden_rejected(self):
        with pytest.raises(ValueError):
            build_mlp(2, [])

    def test_multi_output(self):
        net = build_mlp(2, [4], n_outputs=3, seed=0)
        assert net.forward(np.zeros((5, 2))).shape == (5, 3)


class TestBuildConvNet:
    def test_width_shrinkage(self):
        net = build_conv_net(20, [5, 3], seed=0)
        assert net.layer_sizes == (16, 14)
        assert all(isinstance(l, Conv1DLayer) for l in net.layers)

    def test_forward_runs(self):
        net = build_conv_net(12, [3], seed=0)
        out = net.forward(np.random.default_rng(0).random((4, 12)))
        assert out.shape == (4, 1) and np.isfinite(out).all()


class TestRandomNetwork:
    def test_seeded_reproducible(self):
        a = random_network(seed=7)
        b = random_network(seed=7)
        assert a.layer_sizes == b.layer_sizes
        np.testing.assert_array_equal(a.output_weights, b.output_weights)

    def test_weight_scale_respected(self):
        net = random_network(weight_scale=0.3, seed=9)
        assert all(w <= 0.3 + 1e-12 for w in net.weight_maxes())

    def test_depth_within_bounds(self):
        for seed in range(10):
            net = random_network(max_depth=2, max_width=5, seed=seed)
            assert 1 <= net.depth <= 2
            assert all(2 <= n <= 5 for n in net.layer_sizes)


class TestFigure3Family:
    def test_eight_architectures(self):
        assert len(figure3_architectures()) == 8

    def test_depth_span(self):
        depths = {len(h) for _, h in FIGURE3_SPECS}
        assert depths == {1, 2, 3, 4}

    def test_same_seed_same_weights_across_k(self):
        a = build_figure3_network(2, k=0.5)
        b = build_figure3_network(2, k=4.0)
        np.testing.assert_array_equal(a.layers[0].weights, b.layers[0].weights)
        assert a.lipschitz_constant == 0.5 and b.lipschitz_constant == 4.0

    def test_index_range_checked(self):
        with pytest.raises(ValueError):
            build_figure3_network(8, k=1.0)

    @pytest.mark.parametrize("idx", range(8))
    def test_every_network_builds_and_runs(self, idx):
        net = build_figure3_network(idx, k=1.0)
        d = FIGURE3_SPECS[idx][0]
        out = net.forward(np.full((2, d), 0.5))
        assert np.isfinite(out).all()
