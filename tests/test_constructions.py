"""Unit tests for the worst-case tightness constructions."""

import numpy as np
import pytest

from repro.experiments.constructions import (
    linear_regime_network,
    linear_regime_probe,
    linear_regime_safety_margin,
    saturated_single_layer,
)


class TestSaturatedSingleLayer:
    def test_neurons_saturate_on_probe(self):
        net = saturated_single_layer(8, w_max=0.1)
        taps = net.hidden_outputs(np.ones((1, 1)))
        assert np.all(taps[0] > 0.999)

    def test_output_weights_all_equal_wmax(self):
        net = saturated_single_layer(8, w_max=0.07)
        np.testing.assert_allclose(net.output_weights, 0.07)
        assert net.weight_max(2) == pytest.approx(0.07)

    def test_minimum_size(self):
        with pytest.raises(ValueError):
            saturated_single_layer(1)


class TestLinearRegimeNetwork:
    def test_margin_positive_on_probe(self):
        net = linear_regime_network((5, 4), k=1.0)
        probe = linear_regime_probe(net)
        assert linear_regime_safety_margin(net, probe) > 0

    def test_network_is_affine_in_the_regime(self):
        """In the linear window the whole map is affine: finite
        differences are constant."""
        net = linear_regime_network((4, 3), k=2.0)
        x0 = linear_regime_probe(net, 0.4)
        x1 = linear_regime_probe(net, 0.5)
        x2 = linear_regime_probe(net, 0.6)
        f0, f1, f2 = (float(net.forward(x)[0, 0]) for x in (x0, x1, x2))
        assert (f1 - f0) == pytest.approx(f2 - f1, abs=1e-12)

    def test_all_weights_positive_and_equal_per_stage(self):
        net = linear_regime_network((4, 3), k=1.0)
        for layer in net.layers:
            w = layer.dense_weights()
            assert np.all(w > 0)
            assert np.allclose(w, w.flat[0])

    def test_margin_validation(self):
        with pytest.raises(ValueError):
            linear_regime_network((4,), margin=1.5)
        with pytest.raises(ValueError):
            linear_regime_network(())

    def test_deeper_networks_stay_linear(self):
        net = linear_regime_network((6, 5, 4, 3), k=0.5)
        probe = linear_regime_probe(net)
        assert linear_regime_safety_margin(net, probe) > 0
