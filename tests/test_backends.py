"""The engine backend seam: registry, threaded determinism, quantized
tiers, and the segment-kernel bitwise contract.

Three contracts under test:

* the ``repro.backends`` registry routes ``EngineSpec.backend`` names
  to engine factories and rejects unknown names loudly;
* the precompiled segment-sum synapse kernels are bitwise-identical to
  the retained ``np.add.at`` reference across every golden campaign
  spec fixture (same RNG draw order, same accumulation order);
* ``threaded`` results are worker-count invariant, and match the
  ``numpy`` engine bitwise for deterministic batches at matched slice
  layout; ``quantized-*`` nominals match ``QuantizedNetwork`` bitwise.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.backends import (
    available_backends,
    build_engine,
    get_backend,
    register_backend,
)
from repro.backends.quantized import QuantizedMaskEngine
from repro.backends.threaded import ThreadedMaskEngine
from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    FixedSynapseDistributionSampler,
    MaskCampaignEngine,
    sampled_campaign_errors,
)
from repro.faults.types import SynapseByzantineFault, SynapseNoiseFault
from repro.network import build_mlp
from repro.quantization import (
    FixedPointQuantizer,
    HalfPrecisionQuantizer,
    QuantizedNetwork,
)
from repro.specs import CampaignSpec, load_spec, run as run_spec

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "specs"


@pytest.fixture(scope="module")
def net():
    return build_mlp(
        3, [10, 8], activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.3}, output_scale=0.2, seed=7,
    )


@pytest.fixture(scope="module")
def injector(net):
    return FaultInjector(net, capacity=net.output_bound)


@pytest.fixture(scope="module")
def probes(net):
    return np.random.default_rng(5).random((6, net.input_dim))


def _campaign_fixtures():
    """Golden campaign fixtures with a resolvable builder network."""
    out = []
    for path in sorted(FIXTURE_DIR.glob("campaign_*.json")):
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("network", {}).get("builder"):
            out.append(path)
    return out


class TestRegistry:
    def test_all_tiers_registered(self):
        assert available_backends() == (
            "float16", "numpy", "quantized-int8", "threaded"
        )

    def test_unknown_backend_fails_loud(self):
        with pytest.raises(KeyError, match="numpy"):
            get_backend("cuda")

    def test_register_rejects_empty_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            register_backend("", lambda *a, **k: None)

    def test_build_engine_types(self, injector, probes):
        assert isinstance(
            build_engine("numpy", injector, probes), MaskCampaignEngine
        )
        with build_engine("threaded", injector, probes, workers=2) as eng:
            assert isinstance(eng, ThreadedMaskEngine)
        for name in ("quantized-int8", "float16"):
            eng = build_engine(name, injector, probes)
            assert isinstance(eng, QuantizedMaskEngine)


class TestSegmentKernelBitwise:
    """The segment-sum synapse kernels vs the ``np.add.at`` reference —
    bitwise float64 equality on every golden campaign workload."""

    @pytest.mark.parametrize(
        "path", _campaign_fixtures(), ids=lambda p: p.stem
    )
    def test_segment_matches_scatter_reference(self, path, monkeypatch):
        spec = load_spec(path)
        assert isinstance(spec, CampaignSpec)
        spec = spec.replace(n_scenarios=min(spec.n_scenarios, 1500))

        monkeypatch.setattr("repro.faults.injector.SYNAPSE_KERNEL", "segment")
        segment = run_spec(spec)
        monkeypatch.setattr("repro.faults.injector.SYNAPSE_KERNEL", "scatter")
        scatter = run_spec(spec)

        assert segment.errors.dtype == np.float64
        assert np.array_equal(segment.errors, scatter.errors), (
            f"{path.name}: segment kernel drifted from the np.add.at "
            "reference"
        )


class TestThreadedDeterminism:
    def _sampler(self, net, fault):
        return FixedSynapseDistributionSampler(net, (0, 1, 1), fault=fault)

    def test_worker_count_invariant_stochastic(self, net, injector, probes):
        sampler = self._sampler(net, SynapseNoiseFault(sigma=0.1))
        runs = []
        for workers in (1, 4):
            with build_engine(
                "threaded", injector, probes, workers=workers
            ) as eng:
                runs.append(
                    sampled_campaign_errors(
                        injector, probes, sampler, 800, seed=11, engine=eng
                    )
                )
        assert np.array_equal(runs[0], runs[1])

    def test_matches_numpy_for_deterministic_batches(
        self, net, injector, probes
    ):
        """At matched slice layout (chunk == tile) the threaded pool is
        a pure re-ordering of the same slice evaluations."""
        sampler = self._sampler(net, SynapseByzantineFault())
        serial = build_engine("numpy", injector, probes, chunk_size=256)
        ref = sampled_campaign_errors(
            injector, probes, sampler, 900, seed=3, engine=serial
        )
        with build_engine(
            "threaded", injector, probes, chunk_size=256, workers=3
        ) as eng:
            assert eng.tile == 256
            got = sampled_campaign_errors(
                injector, probes, sampler, 900, seed=3, engine=eng
            )
        assert np.array_equal(ref, got)


class TestQuantizedTiers:
    def test_nominal_matches_quantized_network(self, net, injector, probes):
        for name, quantizers in (
            (
                "quantized-int8",
                [FixedPointQuantizer(8) for _ in range(net.depth)],
            ),
            ("float16", [HalfPrecisionQuantizer() for _ in range(net.depth)]),
        ):
            eng = build_engine(name, injector, probes)
            qnet = QuantizedNetwork(net, quantizers)
            np.testing.assert_array_equal(
                eng.nominal, qnet.forward(probes)
            )

    def test_quantized_tier_shifts_campaign_errors(self, net, injector, probes):
        """The tier actually quantizes: campaign errors differ from the
        full-precision engine but stay finite and well-formed."""
        sampler = self._byz_sampler(net)
        full = sampled_campaign_errors(
            injector, probes, sampler, 400, seed=9,
            engine=build_engine("numpy", injector, probes),
        )
        tier = sampled_campaign_errors(
            injector, probes, sampler, 400, seed=9,
            engine=build_engine("quantized-int8", injector, probes),
        )
        assert full.shape == tier.shape
        assert np.all(np.isfinite(tier))
        assert not np.array_equal(full, tier)

    @staticmethod
    def _byz_sampler(net):
        return FixedSynapseDistributionSampler(
            net, (0, 1, 1), fault=SynapseByzantineFault()
        )

    def test_depth_mismatch_rejected(self, net, injector, probes):
        with pytest.raises(ValueError, match="quantizer per hidden layer"):
            QuantizedMaskEngine(
                injector, probes, quantizers=[FixedPointQuantizer(8)]
            )
