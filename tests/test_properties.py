"""Property-based tests (hypothesis) for the core invariants.

These are the load-bearing guarantees of the reproduction:

1. Fep dominates every injected error, for arbitrary networks,
   distributions and fault mixes (Theorem 2/3 soundness);
2. the message-passing simulator and the vectorised injector agree
   exactly (the two realisations of the failure model are the same
   model);
3. Fep is monotone in capacity and in per-layer weight maxima;
4. quantisers respect their declared worst-case error;
5. serialization round-trips bit-exactly.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.fep import forward_error_propagation, network_fep
from repro.distributed.simulator import DistributedNetwork
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import random_failure_scenario, random_synapse_scenario
from repro.faults.types import ByzantineFault, CrashFault, StuckAtFault
from repro.network import build_mlp
from repro.quantization.quantizers import FixedPointQuantizer, UniformQuantizer

COMMON = dict(
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _network_from(data):
    depth = data.draw(st.integers(1, 3), label="depth")
    widths = [data.draw(st.integers(2, 7), label=f"N{l}") for l in range(depth)]
    k = data.draw(
        st.floats(0.25, 2.0, allow_nan=False, allow_infinity=False), label="K"
    )
    scale = data.draw(st.floats(0.05, 0.9), label="w_scale")
    seed = data.draw(st.integers(0, 2**16), label="seed")
    return build_mlp(
        data.draw(st.integers(1, 3), label="d"),
        widths,
        activation={"name": "sigmoid", "k": k},
        init={"name": "uniform", "scale": scale},
        output_scale=scale,
        seed=seed,
    )


def _distribution_from(data, net):
    return tuple(
        data.draw(st.integers(0, n - 1), label=f"f{l}")
        for l, n in enumerate(net.layer_sizes)
    )


class TestFepSoundness:
    @settings(max_examples=40, **COMMON)
    @given(data=st.data())
    def test_crash_errors_never_exceed_fep(self, data):
        net = _network_from(data)
        dist = _distribution_from(data, net)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        scenario = random_failure_scenario(net, dist, rng=rng)
        injector = FaultInjector(net, capacity=net.output_bound)
        x = rng.random((16, net.input_dim))
        err = injector.output_error(x, scenario)
        assert err <= network_fep(net, dist, mode="crash") + 1e-9

    @settings(max_examples=40, **COMMON)
    @given(data=st.data())
    def test_byzantine_errors_never_exceed_fep(self, data):
        net = _network_from(data)
        dist = _distribution_from(data, net)
        capacity = data.draw(st.floats(0.2, 3.0))
        sign = data.draw(st.sampled_from([-1, 1]))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        scenario = random_failure_scenario(
            net, dist, fault=ByzantineFault(sign=sign), rng=rng
        )
        injector = FaultInjector(net, capacity=capacity)
        x = rng.random((16, net.input_dim))
        err = injector.output_error(x, scenario)
        assert err <= network_fep(
            net, dist, capacity=capacity, mode="byzantine"
        ) + 1e-9

    @settings(max_examples=25, **COMMON)
    @given(data=st.data())
    def test_synapse_errors_never_exceed_theorem4(self, data):
        from repro.core.fep import network_synapse_fep

        net = _network_from(data)
        capacity = data.draw(st.floats(0.2, 2.0))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        stage_caps = [l.num_synapses for l in net.layers] + [net.layer_sizes[-1]]
        dist = tuple(
            data.draw(st.integers(0, min(2, c)), label=f"s{l}")
            for l, c in enumerate(stage_caps)
        )
        scenario = random_synapse_scenario(net, dist, rng=rng)
        injector = FaultInjector(net, capacity=capacity)
        x = rng.random((8, net.input_dim))
        err = injector.output_error(x, scenario)
        assert err <= network_synapse_fep(net, dist, capacity=capacity) + 1e-9


class TestSimulatorEquivalence:
    @settings(max_examples=25, **COMMON)
    @given(data=st.data())
    def test_simulator_matches_injector(self, data):
        net = _network_from(data)
        dist = _distribution_from(data, net)
        capacity = data.draw(st.floats(0.3, 2.0))
        fault = data.draw(
            st.sampled_from(
                [CrashFault(), ByzantineFault(sign=-1), StuckAtFault(0.8)]
            )
        )
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        scenario = random_failure_scenario(net, dist, fault=fault, rng=rng)
        sim = DistributedNetwork(net, capacity=capacity)
        sim.apply_scenario(scenario)
        injector = FaultInjector(net, capacity=capacity)
        x = rng.random((4, net.input_dim))
        np.testing.assert_allclose(
            sim.run_batch(x), injector.run(x, scenario), atol=1e-10
        )


class TestFepAlgebra:
    @settings(max_examples=60, **COMMON)
    @given(
        f=st.integers(0, 4),
        n=st.integers(5, 12),
        w=st.floats(0.01, 2.0),
        k=st.floats(0.1, 4.0),
        c1=st.floats(0.1, 4.0),
        factor=st.floats(1.01, 5.0),
    )
    def test_monotone_in_capacity(self, f, n, w, k, c1, factor):
        lo = forward_error_propagation([f], [n], [1.0, w], k, c1)
        hi = forward_error_propagation([f], [n], [1.0, w], k, c1 * factor)
        assert hi == pytest.approx(lo * factor) or (f == 0 and hi == lo == 0)

    @settings(max_examples=60, **COMMON)
    @given(
        f1=st.integers(1, 3),
        n=st.integers(4, 8),
        w=st.floats(0.05, 1.0),
        k1=st.floats(0.1, 2.0),
        factor=st.floats(1.01, 3.0),
    )
    def test_monotone_in_k_for_first_layer_failures(self, f1, n, w, k1, factor):
        sizes = [n, n]
        ws = [1.0, w, w]
        lo = forward_error_propagation([f1, 0], sizes, ws, k1, 1.0)
        hi = forward_error_propagation([f1, 0], sizes, ws, k1 * factor, 1.0)
        assert hi >= lo

    @settings(max_examples=60, **COMMON)
    @given(data=st.data())
    def test_nonnegative_and_zero_iff_no_failures(self, data):
        net = _network_from(data)
        dist = _distribution_from(data, net)
        fep = network_fep(net, dist, mode="crash")
        assert fep >= 0
        if sum(dist) == 0:
            assert fep == 0
        elif all(w > 0 for w in net.weight_maxes()[1:]):
            assert fep > 0


class TestHeterogeneousFepProperty:
    @settings(max_examples=40, **COMMON)
    @given(data=st.data())
    def test_never_exceeds_homogeneous_bound(self, data):
        from repro.core.fep import heterogeneous_fep

        L = data.draw(st.integers(1, 4), label="L")
        sizes = [data.draw(st.integers(1, 8), label=f"N{l}") for l in range(L)]
        w = [
            data.draw(st.floats(0.01, 1.0), label=f"w{l}") for l in range(L + 1)
        ]
        ks = [data.draw(st.floats(0.1, 3.0), label=f"K{l}") for l in range(L)]
        f = [
            data.draw(st.integers(0, n - 1), label=f"f{l}")
            for l, n in enumerate(sizes)
        ]
        het = heterogeneous_fep(f, sizes, w, ks, 1.0)
        hom = forward_error_propagation(f, sizes, w, max(ks), 1.0)
        assert het <= hom + 1e-9 * max(1.0, hom)

    @settings(max_examples=30, **COMMON)
    @given(data=st.data())
    def test_equals_homogeneous_for_uniform_k(self, data):
        from repro.core.fep import heterogeneous_fep

        L = data.draw(st.integers(1, 3), label="L")
        sizes = [data.draw(st.integers(1, 6), label=f"N{l}") for l in range(L)]
        w = [data.draw(st.floats(0.01, 1.0), label=f"w{l}") for l in range(L + 1)]
        k = data.draw(st.floats(0.1, 3.0), label="K")
        f = [
            data.draw(st.integers(0, n - 1), label=f"f{l}")
            for l, n in enumerate(sizes)
        ]
        het = heterogeneous_fep(f, sizes, w, [k] * L, 1.0)
        hom = forward_error_propagation(f, sizes, w, k, 1.0)
        assert het == pytest.approx(hom, rel=1e-12, abs=1e-15)


class TestQuantizerProperties:
    @settings(max_examples=50, **COMMON)
    @given(
        bits=st.integers(1, 12),
        seed=st.integers(0, 2**16),
    )
    def test_fixed_point_error_bound(self, bits, seed):
        q = FixedPointQuantizer(bits)
        x = np.random.default_rng(seed).random(256)
        assert np.abs(q(x) - x).max() <= q.max_error + 1e-15

    @settings(max_examples=50, **COMMON)
    @given(
        levels=st.integers(2, 64),
        lo=st.floats(-3.0, 0.0),
        width=st.floats(0.5, 5.0),
        seed=st.integers(0, 2**16),
    )
    def test_uniform_quantizer_error_bound(self, levels, lo, width, seed):
        q = UniformQuantizer(levels, lo, lo + width)
        x = np.random.default_rng(seed).uniform(lo, lo + width, 256)
        assert np.abs(q(x) - x).max() <= q.max_error + 1e-12


class TestSerializationProperty:
    @settings(max_examples=15, **COMMON)
    @given(data=st.data())
    def test_roundtrip_preserves_forward(self, data, tmp_path_factory):
        from repro.network import load_network, save_network

        net = _network_from(data)
        tmp = tmp_path_factory.mktemp("nets")
        seed = data.draw(st.integers(0, 2**16))
        path = save_network(net, tmp / f"net{seed}.npz")
        again = load_network(path)
        x = np.random.default_rng(seed).random((8, net.input_dim))
        np.testing.assert_array_equal(net.forward(x), again.forward(x))


class TestBatchedPathProperty:
    @settings(max_examples=25, **COMMON)
    @given(data=st.data())
    def test_run_many_equals_scalar_run(self, data):
        net = _network_from(data)
        dist = _distribution_from(data, net)
        fault = data.draw(
            st.sampled_from(
                [CrashFault(), ByzantineFault(), StuckAtFault(0.3)]
            )
        )
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        scenarios = [
            random_failure_scenario(net, dist, fault=fault, rng=rng)
            for _ in range(4)
        ]
        injector = FaultInjector(net, capacity=1.0)
        x = rng.random((6, net.input_dim))
        batched = injector.run_many(x, scenarios)
        for i, sc in enumerate(scenarios):
            np.testing.assert_allclose(
                batched[i], injector.run(x, sc), atol=1e-12
            )


class TestCombinedBoundProperty:
    @settings(max_examples=20, **COMMON)
    @given(data=st.data())
    def test_combined_dominates_mixed_faults(self, data):
        from repro.core.fep import network_combined_fep

        net = _network_from(data)
        neuron_dist = _distribution_from(data, net)
        stage_caps = [l.num_synapses for l in net.layers] + [net.layer_sizes[-1]]
        synapse_dist = tuple(
            data.draw(st.integers(0, min(2, c)), label=f"syn{l}")
            for l, c in enumerate(stage_caps)
        )
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        scenario = random_failure_scenario(
            net, neuron_dist, fault=ByzantineFault(), rng=rng
        ).merged_with(random_synapse_scenario(net, synapse_dist, rng=rng))
        injector = FaultInjector(net, capacity=1.0)
        x = rng.random((8, net.input_dim))
        err = injector.output_error(x, scenario)
        bound = network_combined_fep(
            net, neuron_dist, synapse_dist, capacity=1.0
        )
        assert err <= bound + 1e-9


class TestPruningProperty:
    @settings(max_examples=15, **COMMON)
    @given(data=st.data())
    def test_pruning_equals_crashing(self, data):
        from repro.analysis.pruning import prune_neurons
        from repro.faults.scenarios import crash_scenario

        net = _network_from(data)
        rng = np.random.default_rng(data.draw(st.integers(0, 2**16)))
        dist = _distribution_from(data, net)
        scenario = random_failure_scenario(net, dist, rng=rng)
        victims = list(scenario.neuron_faults)
        pruned = prune_neurons(net, victims)
        injector = FaultInjector(net, capacity=1.0)
        x = rng.random((6, net.input_dim))
        np.testing.assert_allclose(
            pruned.forward(x),
            injector.run(x, crash_scenario(victims)),
            atol=1e-12,
        )


class TestReplicationProperty:
    @settings(max_examples=15, **COMMON)
    @given(data=st.data(), r=st.integers(2, 5))
    def test_replication_preserves_function(self, data, r):
        from repro.core.overprovision import replicate_network

        net = _network_from(data)
        rep = replicate_network(net, r)
        x = np.random.default_rng(0).random((8, net.input_dim))
        np.testing.assert_allclose(rep.forward(x), net.forward(x), atol=1e-10)
