"""The campaign service: spec, protocol, daemon lifecycle, CLI hygiene.

The serving contract under test (DESIGN.md, ninth subsystem):

* daemon answers are **bitwise identical** to a direct ``repro.run``;
* N concurrent submissions of one content hash cost one engine run
  (coalescing), repeats after completion cost zero (cache);
* overload and shutdown produce *typed* terminals — rejected/timeout —
  never a hung socket;
* ``repro submit`` exits non-zero with a one-line diagnostic on dead
  daemons and malformed specs.
"""

import json
import threading
import time

import numpy as np
import pytest

from repro.cli import main
from repro.service import (
    CampaignService,
    JobRejected,
    ServiceClient,
    ServiceThread,
    ServiceUnavailable,
    result_payload,
    summarize_result,
)
from repro.service.protocol import ProtocolError, parse_request
from repro.specs import (
    CampaignSpec,
    ChaosSpec,
    FaultSpec,
    NetworkRef,
    ProcessSpec,
    SamplerSpec,
    ServiceSpec,
    SpecError,
    StoppingSpec,
    SurvivalSpec,
    run,
    save_spec,
)

NET = NetworkRef(
    builder="mlp", params={"input_dim": 4, "hidden": [12, 8], "seed": 1}
)


def campaign(n_scenarios=2048, seed=7, **kw):
    base = dict(
        network=NET,
        sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
        fault=FaultSpec(kind="stuck", value=0.0),
        n_scenarios=n_scenarios,
        seed=seed,
    )
    base.update(kw)
    return CampaignSpec(**base)


#: Long enough (~0.7s) that admission/coalescing races resolve
#: deterministically while it occupies the single runner.
def blocker(seed=991):
    return campaign(n_scenarios=150_000, seed=seed)


@pytest.fixture
def service(tmp_path):
    spec = ServiceSpec(
        socket=str(tmp_path / "svc.sock"),
        max_inflight=2,
        queue_depth=8,
        results_dir=str(tmp_path / "results"),
    )
    with ServiceThread(spec) as svc:
        yield svc


def client_for(svc: CampaignService) -> ServiceClient:
    return ServiceClient(svc.spec.socket)


class TestServiceSpec:
    def test_round_trip(self):
        spec = ServiceSpec(
            socket="s.sock", max_inflight=4, queue_depth=16,
            job_timeout=2.5, results_dir="r",
        )
        assert ServiceSpec.from_dict(spec.to_dict()) == spec

    def test_optional_fields_are_omitted_when_none(self):
        payload = ServiceSpec().to_dict()
        for field in ("socket", "host", "port", "job_timeout",
                      "results_dir"):
            assert field not in payload

    def test_socket_and_port_are_exclusive(self):
        with pytest.raises(SpecError, match="mutually exclusive"):
            ServiceSpec(socket="s.sock", host="127.0.0.1", port=7777)

    def test_host_needs_port(self):
        with pytest.raises(SpecError, match="set together"):
            ServiceSpec(host="127.0.0.1")
        with pytest.raises(SpecError, match="set together"):
            ServiceSpec(port=7777)

    def test_host_must_be_loopback(self):
        with pytest.raises(SpecError, match="loopback"):
            ServiceSpec(host="0.0.0.0", port=7777)

    @pytest.mark.parametrize(
        "kw",
        [
            {"max_inflight": 0},
            {"queue_depth": -1},
            {"job_timeout": 0.0},
            {"port": 70000, "host": "127.0.0.1"},
            {"cache_entries": -1},
        ],
    )
    def test_bounds_rejected(self, kw):
        with pytest.raises(SpecError):
            ServiceSpec(**kw)


class TestProtocol:
    def test_unknown_op_rejected(self):
        with pytest.raises(ProtocolError, match="unknown op"):
            parse_request(b'{"op": "launch"}')

    def test_unknown_keys_rejected(self):
        with pytest.raises(ProtocolError, match="unknown keys"):
            parse_request(b'{"op": "ping", "extra": 1}')

    def test_non_object_frame_rejected(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            parse_request(b"[1, 2]")
        with pytest.raises(ProtocolError, match="not valid JSON"):
            parse_request(b"{nope")

    def test_submit_payload_validated(self):
        with pytest.raises(ProtocolError, match="'spec' object"):
            parse_request(b'{"op": "submit"}')
        with pytest.raises(ProtocolError, match="stream"):
            parse_request(b'{"op": "submit", "spec": {}, "stream": 1}')
        with pytest.raises(ProtocolError, match="timeout"):
            parse_request(b'{"op": "submit", "spec": {}, "timeout": -1}')

    def test_result_payload_re_encoding_is_stable(self):
        spec = campaign(n_scenarios=256)
        payload = result_payload(spec, run(spec))
        wire = json.dumps(payload, sort_keys=True)
        assert json.dumps(json.loads(wire), sort_keys=True) == wire

    def test_summarize_result_covers_every_kind(self):
        camp = campaign(n_scenarios=256)
        assert "campaign" in summarize_result(result_payload(camp, run(camp)))
        surv = SurvivalSpec(
            network=NET, p_fail=0.05, epsilon=0.5, epsilon_prime=0.1
        )
        assert "survival" in summarize_result(result_payload(surv, run(surv)))


class TestServedResults:
    def test_campaign_bitwise_identical_to_direct_run(self, service):
        spec = campaign()
        direct = np.asarray(run(spec).errors, dtype=np.float64)
        with client_for(service) as client:
            served = np.array(client.result(spec)["errors"])
        assert served.dtype == np.float64
        assert np.array_equal(served, direct)

    def test_survival_certified_identical(self, service):
        spec = SurvivalSpec(
            network=NET, p_fail=0.05, epsilon=0.5, epsilon_prime=0.1
        )
        with client_for(service) as client:
            assert client.result(spec)["survival"] == run(spec)

    def test_chaos_report_identical(self, service):
        spec = ChaosSpec(
            network=NET, epsilon=0.5, epsilon_prime=0.1,
            processes=(ProcessSpec(kind="lifetime", rate=0.1),),
            epochs=8, replicas=6, batch=4, seed=3,
        )
        direct = run(spec).to_dict()
        with client_for(service) as client:
            assert client.result(spec)["report"] == direct

    def test_streaming_rides_sample_blocks(self, service):
        spec = campaign(n_scenarios=2048)  # 2 SAMPLE_BLOCK chunks
        events = []
        with client_for(service) as client:
            client.result(spec, stream=True, on_event=events.append)
        chunks = [e for e in events if e["type"] == "chunk"]
        assert [c["scenarios"] for c in chunks] == [1024, 1024]
        assert chunks[-1]["evaluated"] == 2048

    def test_streaming_reports_adaptive_stop(self, service):
        spec = campaign(
            n_scenarios=40_000,
            threshold=0.02,
            stopping=StoppingSpec(method="hoeffding", target_ci=0.05),
        )
        events = []
        with client_for(service) as client:
            payload = client.result(spec, stream=True, on_event=events.append)
        stops = [e for e in events if e["type"] == "adaptive"]
        assert len(stops) == 1
        assert stops[0]["n_scenarios"] == payload["adaptive"]["n_scenarios"]

    def test_malformed_spec_is_a_typed_error(self, service):
        with client_for(service) as client:
            client._request(
                {"op": "submit", "spec": {"spec": "campaign"}, "stream": False}
            )
            message = client._read()
        assert message["type"] == "error"
        assert message["kind"] == "spec"

    def test_service_spec_itself_is_not_servable(self, service):
        with client_for(service) as client:
            client._request(
                {"op": "submit", "spec": ServiceSpec().to_dict(),
                 "stream": False}
            )
            message = client._read()
        assert message["type"] == "error"
        assert "not a servable workload" in message["detail"]


class TestCacheAndCoalesce:
    def test_second_submit_is_a_cache_hit_without_engine_run(self, service):
        spec = campaign(n_scenarios=1024)
        with client_for(service) as client:
            first = client.submit(spec)
            second = client.submit(spec)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["result"] == first["result"]
        assert service.metrics.value("repro_service_engine_runs") == 1
        assert service.metrics.value(
            "repro_service_cache_hits", tier="memory"
        ) == 1

    def test_store_tier_survives_a_daemon_restart(self, tmp_path):
        spec = campaign(n_scenarios=1024)
        results = str(tmp_path / "results")

        def one_daemon(n):
            svc_spec = ServiceSpec(
                socket=str(tmp_path / f"svc{n}.sock"), results_dir=results
            )
            return ServiceThread(svc_spec)

        with one_daemon(1) as first:
            with client_for(first) as client:
                fresh = client.submit(spec)
        with one_daemon(2) as second:
            with client_for(second) as client:
                repeat = client.submit(spec)
            assert second.metrics.value("repro_service_engine_runs") is None
            assert second.metrics.value(
                "repro_service_cache_hits", tier="store"
            ) == 1
        assert repeat["cached"] is True
        assert repeat["result"] == fresh["result"]

    def test_concurrent_identical_submits_coalesce_to_one_run(self, tmp_path):
        svc_spec = ServiceSpec(
            socket=str(tmp_path / "svc.sock"), max_inflight=1, queue_depth=8
        )
        target = campaign(n_scenarios=1024, seed=5)
        results = []

        def submit_target():
            with ServiceClient(svc_spec.socket) as client:
                results.append(client.submit(target))

        with ServiceThread(svc_spec) as svc:
            with ServiceClient(svc_spec.socket) as client:
                hold = threading.Thread(
                    target=lambda: ServiceClient(svc_spec.socket).submit(
                        blocker()
                    )
                )
                hold.start()
                while not svc._jobs:  # blocker admitted
                    time.sleep(0.005)
                threads = [
                    threading.Thread(target=submit_target) for _ in range(4)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=30)
                hold.join(timeout=30)
            # 2 engine runs total: the blocker and exactly one target
            # evaluation; the other three submits attached in flight
            # (coalesced) or answered from the fresh cache entry.
            assert svc.metrics.value("repro_service_engine_runs") == 2
            attached = svc.metrics.value("repro_service_coalesce_hits") or 0
            cached = svc.metrics.value(
                "repro_service_cache_hits", tier="memory"
            ) or 0
            assert attached + cached == 3
        payloads = [r["result"] for r in results]
        assert all(p == payloads[0] for p in payloads)


class TestAdmissionControl:
    def test_full_queue_sheds_with_typed_rejected(self, tmp_path):
        svc_spec = ServiceSpec(
            socket=str(tmp_path / "svc.sock"), max_inflight=1, queue_depth=1
        )
        with ServiceThread(svc_spec) as svc:
            hold = threading.Thread(
                target=lambda: ServiceClient(svc_spec.socket).submit(blocker())
            )
            hold.start()
            while svc._queue is None or not svc._jobs:
                time.sleep(0.005)
            filler = threading.Thread(
                target=lambda: ServiceClient(svc_spec.socket).submit(
                    campaign(n_scenarios=1024, seed=21)
                )
            )
            filler.start()
            while svc._queue.qsize() < 1:  # filler occupies the only slot
                time.sleep(0.005)
            with ServiceClient(svc_spec.socket) as client:
                terminal = client.submit(campaign(n_scenarios=1024, seed=22))
                assert terminal["type"] == "rejected"
                assert terminal["reason"] == "queue-full"
                with pytest.raises(JobRejected):
                    client.result(campaign(n_scenarios=1024, seed=23))
            hold.join(timeout=30)
            filler.join(timeout=30)
            assert svc.metrics.value("repro_service_shed") >= 2

    def test_job_timeout_is_a_typed_terminal(self, tmp_path):
        svc_spec = ServiceSpec(
            socket=str(tmp_path / "svc.sock"),
            max_inflight=1,
            job_timeout=0.05,
        )
        with ServiceThread(svc_spec):
            with ServiceClient(svc_spec.socket) as client:
                terminal = client.submit(blocker(seed=77))
        assert terminal["type"] == "timeout"
        assert terminal["timeout_s"] == 0.05

    def test_shutdown_drains_in_flight_jobs(self, tmp_path):
        svc_spec = ServiceSpec(
            socket=str(tmp_path / "svc.sock"), max_inflight=1
        )
        terminals = []

        def submit_slow():
            with ServiceClient(svc_spec.socket) as client:
                terminals.append(client.submit(blocker(seed=88)))

        with ServiceThread(svc_spec) as svc:
            worker = threading.Thread(target=submit_slow)
            worker.start()
            while not svc._jobs:
                time.sleep(0.005)
            with ServiceClient(svc_spec.socket) as client:
                ack = client.shutdown(drain=True)
            worker.join(timeout=30)
        assert ack["type"] == "shutdown-ack"
        assert ack["drained"] == 1
        assert terminals and terminals[0]["type"] == "result"

    def test_draining_daemon_rejects_new_submits(self, tmp_path):
        svc_spec = ServiceSpec(
            socket=str(tmp_path / "svc.sock"), max_inflight=1
        )
        with ServiceThread(svc_spec) as svc:
            hold = threading.Thread(
                target=lambda: ServiceClient(svc_spec.socket).submit(
                    blocker(seed=99)
                )
            )
            hold.start()
            while not svc._jobs:
                time.sleep(0.005)
            down = threading.Thread(
                target=lambda: ServiceClient(svc_spec.socket).shutdown(
                    drain=True
                )
            )
            down.start()
            while not svc._draining:  # the ~0.7s blocker is still running
                time.sleep(0.005)
            with ServiceClient(svc_spec.socket) as client:
                terminal = client.submit(campaign(n_scenarios=1024, seed=9))
            hold.join(timeout=30)
            down.join(timeout=30)
        assert terminal["type"] == "rejected"
        assert terminal["reason"] == "shutting-down"


class TestServiceCLI:
    def test_submit_against_dead_daemon_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "camp.json"
        save_spec(campaign(), spec_path)
        rc = main(
            ["submit", str(spec_path), "--socket", str(tmp_path / "no.sock")]
        )
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot reach repro service")
        assert len(err.strip().splitlines()) == 1

    def test_submit_malformed_spec_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        rc = main(["submit", str(bad), "--socket", str(tmp_path / "no.sock")])
        assert rc == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert len(err.strip().splitlines()) == 1

    def test_submit_unknown_spec_fields_exit_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"spec": "campaign", "bogus": 1}\n')
        rc = main(["submit", str(bad), "--socket", str(tmp_path / "no.sock")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_shutdown_against_dead_daemon_exits_2(self, tmp_path, capsys):
        rc = main(["shutdown", "--socket", str(tmp_path / "no.sock")])
        assert rc == 2
        assert capsys.readouterr().err.startswith("error:")

    def test_host_without_port_exits_2(self, tmp_path, capsys):
        spec_path = tmp_path / "camp.json"
        save_spec(campaign(), spec_path)
        rc = main(["submit", str(spec_path), "--host", "127.0.0.1"])
        assert rc == 2
        assert "--host needs --port" in capsys.readouterr().err

    def test_serve_dump_spec_round_trips(self, tmp_path, capsys):
        rc = main(
            ["serve", "--socket", "svc.sock", "--max-inflight", "3",
             "--job-timeout", "1.5", "--dump-spec"]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        spec = ServiceSpec.from_dict(payload)
        assert spec.max_inflight == 3
        assert spec.job_timeout == 1.5

    def test_serve_spec_conflicts_with_flags(self, tmp_path, capsys):
        spec_path = tmp_path / "svc.json"
        save_spec(ServiceSpec(socket="s.sock"), spec_path)
        rc = main(["serve", "--spec", str(spec_path), "--max-inflight", "3"])
        assert rc == 2
        assert "--spec conflicts with" in capsys.readouterr().err

    def test_serve_rejects_workload_specs(self, tmp_path, capsys):
        spec_path = tmp_path / "camp.json"
        save_spec(campaign(), spec_path)
        rc = main(["serve", "--spec", str(spec_path)])
        assert rc == 2
        assert "serve needs a ServiceSpec" in capsys.readouterr().err

    def test_submit_round_trip_against_live_daemon(self, tmp_path, capsys):
        spec_path = tmp_path / "camp.json"
        save_spec(campaign(n_scenarios=1024), spec_path)
        svc_spec = ServiceSpec(socket=str(tmp_path / "svc.sock"))
        with ServiceThread(svc_spec):
            rc = main(
                ["submit", str(spec_path), "--socket", svc_spec.socket]
            )
            captured = capsys.readouterr()
            assert rc == 0
            assert captured.out.startswith("[evaluated] campaign:")
            rc = main(
                ["submit", str(spec_path), "--socket", svc_spec.socket,
                 "--json"]
            )
            payload = json.loads(capsys.readouterr().out)
            assert payload["kind"] == "campaign"
            rc = main(["shutdown", "--socket", svc_spec.socket])
            assert rc == 0
            assert "service stopped" in capsys.readouterr().out


class TestTcpEndpoint:
    def test_loopback_tcp_serves_and_shuts_down(self, tmp_path):
        import socket as socket_mod

        with socket_mod.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        svc_spec = ServiceSpec(host="127.0.0.1", port=port)
        spec = campaign(n_scenarios=1024)
        direct = np.asarray(run(spec).errors, dtype=np.float64)
        with ServiceThread(svc_spec):
            with ServiceClient(host="127.0.0.1", port=port) as client:
                served = np.array(client.result(spec)["errors"])
                assert np.array_equal(served, direct)
                assert "repro_service_jobs" in client.metrics_text()
                client.shutdown()
