"""Round-trip tests for network serialization."""

import numpy as np
import pytest

from repro.network import build_conv_net, build_mlp, load_network, save_network


class TestRoundTrip:
    def test_dense_bit_exact(self, tmp_path, rng):
        net = build_mlp(3, [7, 4], activation={"name": "sigmoid", "k": 1.5}, seed=0)
        path = save_network(net, tmp_path / "net.npz")
        again = load_network(path)
        x = rng.random((16, 3))
        np.testing.assert_array_equal(net.forward(x), again.forward(x))

    def test_conv_bit_exact(self, tmp_path, rng):
        net = build_conv_net(12, [3, 2], seed=1)
        path = save_network(net, tmp_path / "conv.npz")
        again = load_network(path)
        x = rng.random((8, 12))
        np.testing.assert_array_equal(net.forward(x), again.forward(x))

    def test_structure_preserved(self, tmp_path):
        net = build_mlp(2, [5], activation={"name": "tanh", "k": 0.7}, seed=2)
        again = load_network(save_network(net, tmp_path / "n"))
        assert again.layer_sizes == net.layer_sizes
        assert again.lipschitz_constant == net.lipschitz_constant
        assert again.weight_maxes() == net.weight_maxes()

    def test_extension_appended(self, tmp_path):
        net = build_mlp(2, [3], seed=0)
        path = save_network(net, tmp_path / "plain")
        assert path.suffix == ".npz"

    def test_missing_spec_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        np.savez(bad, foo=np.zeros(3))
        with pytest.raises(ValueError, match="missing spec"):
            load_network(bad)

    def test_weights_mutation_does_not_leak(self, tmp_path, rng):
        net = build_mlp(2, [4], seed=3)
        path = save_network(net, tmp_path / "n.npz")
        net.scale_weights(0.0)
        again = load_network(path)
        assert np.abs(again.output_weights).max() > 0
