"""Unit tests for the distributed-system event records."""

import pytest

from repro.distributed.events import ComponentState, Reset, RoundTrace, Signal


class TestSignal:
    def test_fields(self):
        s = Signal(layer=1, src=3, value=0.5, round=2)
        assert s.layer == 1 and s.src == 3 and s.value == 0.5 and s.round == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            Signal(layer=-1, src=0, value=0.0, round=0)
        with pytest.raises(ValueError):
            Signal(layer=0, src=-1, value=0.0, round=0)

    def test_immutable(self):
        s = Signal(layer=0, src=0, value=1.0, round=0)
        with pytest.raises(AttributeError):
            s.value = 2.0


class TestReset:
    def test_is_zero_valued_signal(self):
        r = Reset(layer=1, src=2, round=0)
        assert isinstance(r, Signal)
        assert r.value == 0.0


class TestComponentState:
    def test_values(self):
        assert ComponentState.CORRECT.value == "correct"
        assert ComponentState.CRASHED.value == "crashed"
        assert ComponentState.BYZANTINE.value == "byzantine"


class TestRoundTrace:
    def test_str(self):
        t = RoundTrace(0, 0, 10, 2, 1)
        text = str(t)
        assert "10 delivered" in text and "2 dropped" in text
