"""Unit tests for optimizers."""

import numpy as np
import pytest

from repro.training.optimizers import SGD, Adam, RMSProp, get_optimizer


def quadratic_descent(opt, steps=300, dim=4, seed=0):
    """Minimise |p - target|^2; returns final distance."""
    rng = np.random.default_rng(seed)
    target = rng.random(dim)
    p = np.zeros(dim)
    params = {"p": p}
    for _ in range(steps):
        grads = {"p": 2 * (p - target)}
        opt.step(params, grads)
    return float(np.abs(p - target).max())


class TestSGD:
    def test_plain_update_rule(self):
        opt = SGD(lr=0.1)
        p = np.array([1.0])
        opt.step({"p": p}, {"p": np.array([2.0])})
        assert p[0] == pytest.approx(0.8)

    def test_converges_on_quadratic(self):
        assert quadratic_descent(SGD(lr=0.1)) < 1e-6

    def test_momentum_converges(self):
        assert quadratic_descent(SGD(lr=0.05, momentum=0.9)) < 1e-6

    def test_nesterov_converges(self):
        assert quadratic_descent(SGD(lr=0.05, momentum=0.9, nesterov=True)) < 1e-6

    def test_nesterov_requires_momentum(self):
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=0.0, nesterov=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(lr=0.0)
        with pytest.raises(ValueError):
            SGD(lr=0.1, momentum=1.0)


class TestAdam:
    def test_converges_on_quadratic(self):
        assert quadratic_descent(Adam(lr=0.05), steps=600) < 1e-4

    def test_bias_correction_first_step(self):
        opt = Adam(lr=0.1)
        p = np.array([0.0])
        opt.step({"p": p}, {"p": np.array([1.0])})
        # First step magnitude ~ lr regardless of gradient scale.
        assert abs(p[0]) == pytest.approx(0.1, rel=1e-6)

    def test_state_reset(self):
        opt = Adam(lr=0.1)
        p = np.array([0.0])
        opt.step({"p": p}, {"p": np.array([1.0])})
        opt.reset()
        assert opt._state == {}

    def test_beta_validation(self):
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestRMSProp:
    def test_converges_on_quadratic(self):
        # RMSProp with a constant step hovers near the optimum rather
        # than converging exactly; a loose neighbourhood is the claim.
        assert quadratic_descent(RMSProp(lr=0.05), steps=600) < 0.05

    def test_rho_validation(self):
        with pytest.raises(ValueError):
            RMSProp(rho=1.5)


class TestProtocol:
    def test_in_place_updates(self):
        opt = SGD(lr=1.0)
        p = np.zeros(3)
        ref = p
        opt.step({"p": p}, {"p": np.ones(3)})
        assert ref is p and np.all(p == -1.0)

    def test_missing_gradient_skipped(self):
        opt = SGD(lr=1.0)
        p = np.zeros(2)
        opt.step({"p": p}, {})
        assert np.all(p == 0.0)

    def test_shape_mismatch_rejected(self):
        opt = SGD(lr=1.0)
        with pytest.raises(ValueError, match="shape"):
            opt.step({"p": np.zeros(2)}, {"p": np.zeros(3)})

    def test_registry(self):
        assert isinstance(get_optimizer("adam"), Adam)
        assert isinstance(get_optimizer("sgd", lr=0.2), SGD)
        opt = RMSProp()
        assert get_optimizer(opt) is opt
        with pytest.raises(KeyError):
            get_optimizer("lbfgs")
