"""Unit tests for the SMR whole-network-replication baseline."""

import numpy as np
import pytest

from repro.distributed.replication import (
    ReplicatedEnsemble,
    smr_neuron_cost,
    smr_tolerance,
)
from repro.network import build_mlp


@pytest.fixture
def base_net():
    return build_mlp(2, [6, 5], seed=50)


class TestToleranceFormula:
    @pytest.mark.parametrize("r,expected", [(1, 0), (2, 0), (3, 1), (5, 2), (7, 3)])
    def test_floor_half(self, r, expected):
        assert smr_tolerance(r) == expected

    def test_validation(self):
        with pytest.raises(ValueError):
            smr_tolerance(0)

    def test_neuron_cost(self, base_net):
        assert smr_neuron_cost(base_net, 5) == 5 * 11


class TestEnsemble:
    def test_nominal_vote_equals_network(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 3)
        x = rng.random((8, 2))
        np.testing.assert_allclose(ens.forward(x), base_net.forward(x))

    def test_byzantine_within_tolerance_masked(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 5)
        ens.make_replica_byzantine(0, 1e9)
        ens.make_replica_byzantine(1, -1e9)
        x = rng.random((8, 2))
        assert ens.vote_error(x, base_net) <= 1e-12
        assert ens.masks_current_failures()

    def test_byzantine_beyond_tolerance_breaks(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 3)
        ens.make_replica_byzantine(0, 1e6)
        ens.make_replica_byzantine(1, 1e6)
        x = rng.random((8, 2))
        assert ens.vote_error(x, base_net) > 1e3
        assert not ens.masks_current_failures()

    def test_crashed_replicas_excluded(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 3)
        ens.crash_replica(0)
        ens.crash_replica(1)
        x = rng.random((8, 2))
        np.testing.assert_allclose(ens.forward(x), base_net.forward(x))

    def test_all_crashed_raises(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 2)
        ens.crash_replica(0)
        ens.crash_replica(1)
        with pytest.raises(RuntimeError, match="all replicas"):
            ens.forward(rng.random((2, 2)))

    def test_repair(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 3)
        ens.make_replica_byzantine(0, 5.0)
        ens.crash_replica(1)
        ens.repair_all()
        assert ens.num_faulty == 0
        x = rng.random((4, 2))
        np.testing.assert_allclose(ens.forward(x), base_net.forward(x))

    def test_shape_mismatch_rejected(self, base_net):
        other = build_mlp(3, [4], seed=1)
        with pytest.raises(ValueError, match="shapes"):
            ReplicatedEnsemble([base_net, other])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ReplicatedEnsemble([])
        with pytest.raises(ValueError):
            ReplicatedEnsemble.of_copies(build_mlp(2, [3], seed=0), 0)

    def test_replicas_are_copies(self, base_net, rng):
        ens = ReplicatedEnsemble.of_copies(base_net, 2)
        ens.replicas[0].network.scale_weights(0.0)
        x = rng.random((4, 2))
        # Replica 1 untouched; median of (zeroed, nominal) is the midpoint.
        assert not np.allclose(
            ens.replicas[1].network.forward(x), ens.replicas[0].network.forward(x)
        )

    def test_heterogeneous_ensemble_votes(self, rng):
        nets = [build_mlp(2, [6], seed=s) for s in range(3)]
        ens = ReplicatedEnsemble(nets)
        x = rng.random((4, 2))
        out = ens.forward(x)
        stack = np.stack([n.forward(x) for n in nets])
        np.testing.assert_allclose(out, np.median(stack, axis=0))
