"""Run-wide observability: spans, metrics, exporters, determinism.

Four contracts are audited here:

* **determinism** — the observer draws no randomness, so campaign /
  adaptive / chaos results are bitwise identical with observation on
  or off, serial and parallel; and because worker span payloads fold
  in block submission order, the observed trace *structure*
  (:meth:`RunTrace.fingerprint`) is identical serial vs parallel;
* **registry semantics** — counters add, gauges overwrite, histogram
  buckets follow Prometheus ``le`` edge rules, merges are
  deterministic;
* **exposition** — ``render_openmetrics`` emits valid OpenMetrics
  text (HELP/TYPE preamble, ``_total`` counter suffix, cumulative
  ``_bucket`` rows, the ``# EOF`` terminator);
* **plumbing** — ``repro.run`` wraps every spec kind in a ``run``
  span, ``ObsSpec(record=...)`` persists a version-checked record,
  the CLI inspects it, and the artifact store counts cache hits and
  misses.
"""

import json

import numpy as np
import pytest

from repro.artifacts import ArtifactStore
from repro.cli import main
from repro.experiments.registry import RegisteredExperiment
from repro.experiments.runner import ExperimentResult
from repro.faults.adaptive import adaptive_campaign_errors
from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    FixedDistributionSampler,
    exhaustive_crash_errors,
    sampled_campaign_errors,
)
from repro.network import build_mlp
from repro.obs import (
    RECORD_VERSION,
    MetricsRegistry,
    RunObserver,
    RunTrace,
    events_jsonl,
    load_run_record,
    profile_from_metrics,
    render_metrics_table,
    render_openmetrics,
    render_span_tree,
    save_run_record,
)
from repro.profiling import PhaseProfile
from repro.specs import (
    CampaignSpec,
    ChaosSpec,
    DetectorSpec,
    FaultSpec,
    NetworkRef,
    ObsSpec,
    PolicySpec,
    ProcessSpec,
    SamplerSpec,
    SpecError,
    StoppingSpec,
    run,
)


@pytest.fixture(scope="module")
def net():
    return build_mlp(
        2,
        [5, 4],
        activation={"name": "sigmoid", "k": 0.6},
        init={"name": "uniform", "scale": 0.35},
        output_scale=0.3,
        seed=3,
    )


@pytest.fixture(scope="module")
def probes():
    return np.random.default_rng(11).random((6, 2))


# -- the metrics registry ------------------------------------------------


class TestRegistry:
    def test_counter_accumulates_and_rejects_decrements(self):
        reg = MetricsRegistry()
        reg.counter("repro_things", "Things.").inc()
        reg.counter("repro_things").inc(2.5)
        assert reg.value("repro_things") == 3.5
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("repro_things").inc(-1)

    def test_counter_name_must_not_carry_the_total_suffix(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="_total"):
            reg.counter("repro_things_total")

    def test_gauge_is_last_write_wins(self):
        reg = MetricsRegistry()
        reg.gauge("repro_level").set(4.0)
        reg.gauge("repro_level").set(1.5)
        assert reg.value("repro_level") == 1.5

    def test_kind_conflict_is_rejected(self):
        reg = MetricsRegistry()
        reg.counter("repro_x")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("repro_x")

    def test_labels_address_distinct_series_in_sorted_order(self):
        reg = MetricsRegistry()
        reg.counter("repro_tiles", worker=1).inc()
        reg.counter("repro_tiles", worker=0).inc(3)
        assert reg.value("repro_tiles", worker=0) == 3
        assert reg.value("repro_tiles", worker=1) == 1
        (_, _, _, _, series), = reg.families()
        labels = [dict(key) for key, _ in series]
        assert labels == [{"worker": "0"}, {"worker": "1"}]

    def test_histogram_edge_value_lands_in_its_le_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("repro_wait", buckets=(0.1, 1.0))
        h.observe(0.1)   # == first edge -> first bucket (le semantics)
        h.observe(0.5)
        h.observe(1.0)   # == last finite edge
        h.observe(7.0)   # above every bound -> +Inf only
        assert h.counts == [1, 2]
        assert h.inf_count == 1
        assert h.count == 4
        assert h.cumulative() == [("0.1", 1), ("1", 3), ("+Inf", 4)]

    def test_histogram_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="at least one"):
            reg.histogram("repro_a", buckets=())
        with pytest.raises(ValueError, match="strictly increasing"):
            reg.histogram("repro_b", buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="implicit"):
            reg.histogram("repro_c", buckets=(1.0, float("inf")))

    def test_merge_adds_counts_and_overwrites_gauges(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("repro_n").inc(2)
        a.gauge("repro_g").set(1.0)
        a.histogram("repro_h", buckets=(1.0,)).observe(0.5)
        b.counter("repro_n").inc(3)
        b.gauge("repro_g").set(9.0)
        b.histogram("repro_h", buckets=(1.0,)).observe(2.0)
        a.merge(b)
        assert a.value("repro_n") == 5
        assert a.value("repro_g") == 9.0
        h = a.histogram("repro_h", buckets=(1.0,))
        assert h.counts == [1] and h.inf_count == 1 and h.sum == 2.5

    def test_as_dict_round_trip_is_exact(self):
        reg = MetricsRegistry()
        reg.counter("repro_n", "N.", worker=2).inc(4)
        reg.gauge("repro_g").set(0.25)
        reg.histogram("repro_h", buckets=(0.5, 2.0)).observe(1.0)
        back = MetricsRegistry.from_dict(
            json.loads(json.dumps(reg.as_dict()))
        )
        assert back.as_dict() == reg.as_dict()


# -- the span plane ------------------------------------------------------


class TestTrace:
    def test_fingerprint_ignores_timing_but_not_structure(self):
        a, b = RunTrace(), RunTrace()
        for t in (a, b):
            with t.span("run", kind="campaign"):
                with t.span("block", index=0, scenarios=8):
                    t.event("adaptive-look", look=1)
        assert a.fingerprint() == b.fingerprint()
        c = RunTrace()
        with c.span("run", kind="campaign"):
            with c.span("block", index=1, scenarios=8):
                c.event("adaptive-look", look=1)
        assert a.fingerprint() != c.fingerprint()

    def test_graft_appends_under_the_current_span(self):
        worker = RunObserver()
        with worker.block_span(0, 16):
            pass
        parent = RunObserver()
        with parent.span("run"):
            parent.absorb(worker.worker_payload())
        (root,) = parent.trace.spans
        assert [child.name for child in root.children] == ["block"]
        assert parent.metrics.value("repro_blocks") == 1


# -- exporters -----------------------------------------------------------


class TestExporters:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("repro_blocks", "Blocks.").inc(2)
        reg.gauge("repro_rate", "Rate.", phase="gemm").set(0.5)
        reg.histogram(
            "repro_wait", buckets=(0.1, 1.0), help="Waits."
        ).observe(0.3)
        return reg

    def test_openmetrics_exposition_shape(self):
        text = render_openmetrics(self._registry())
        lines = text.splitlines()
        assert "# HELP repro_blocks Blocks." in lines
        assert "# TYPE repro_blocks counter" in lines
        assert "repro_blocks_total 2" in lines
        assert 'repro_rate{phase="gemm"} 0.5' in lines
        assert 'repro_wait_bucket{le="0.1"} 0' in lines
        assert 'repro_wait_bucket{le="1"} 1' in lines
        assert 'repro_wait_bucket{le="+Inf"} 1' in lines
        assert "repro_wait_count 1" in lines
        assert "repro_wait_sum 0.3" in lines
        assert text.endswith("# EOF\n")

    def test_events_jsonl_is_one_sorted_object_per_line(self):
        obs = RunObserver()
        with obs.span("run"):
            obs.event("cache-hit", experiment="toy")
        rows = [
            json.loads(line)
            for line in events_jsonl(obs.trace).splitlines()
        ]
        assert [r["name"] for r in rows] == ["run", "cache-hit"]
        assert rows[1]["type"] == "event"
        for row, line in zip(rows, events_jsonl(obs.trace).splitlines()):
            assert line == json.dumps(row, sort_keys=True)

    def test_span_tree_and_metrics_table_render(self):
        obs = RunObserver()
        with obs.span("run", kind="campaign"):
            with obs.block_span(0, 8):
                pass
        tree = render_span_tree(obs.trace)
        assert "run" in tree and "block" in tree
        table = render_metrics_table(self._registry())
        assert "repro_blocks_total 2" in table


# -- determinism: obs on/off, serial vs parallel -------------------------


class TestDeterminism:
    def test_sampled_campaign_bitwise_identical_obs_on_off(
        self, net, probes
    ):
        injector = FaultInjector(net)
        sampler = FixedDistributionSampler(net, (2, 1))
        base = sampled_campaign_errors(injector, probes, sampler, 600, seed=5)
        obs = RunObserver()
        observed = sampled_campaign_errors(
            injector, probes, sampler, 600, seed=5, obs=obs
        )
        assert np.array_equal(base, observed)
        assert obs.metrics.value("repro_blocks") == 1

    def test_sampled_campaign_trace_identical_serial_vs_parallel(
        self, net, probes
    ):
        injector = FaultInjector(net)
        sampler = FixedDistributionSampler(net, (2, 1))
        serial_obs, parallel_obs = RunObserver(), RunObserver()
        serial = sampled_campaign_errors(
            injector, probes, sampler, 2300, seed=5, obs=serial_obs
        )
        parallel = sampled_campaign_errors(
            injector, probes, sampler, 2300, seed=5, n_workers=2,
            obs=parallel_obs,
        )
        assert np.array_equal(serial, parallel)
        assert serial_obs.trace.fingerprint() == parallel_obs.trace.fingerprint()
        assert (
            serial_obs.metrics.value("repro_blocks")
            == parallel_obs.metrics.value("repro_blocks")
            == 3
        )
        assert (
            serial_obs.profile.scenarios
            == parallel_obs.profile.scenarios
            == 2300
        )

    def test_exhaustive_campaign_trace_identical_serial_vs_parallel(
        self, net, probes
    ):
        injector = FaultInjector(net)
        serial_obs, parallel_obs = RunObserver(), RunObserver()
        serial = exhaustive_crash_errors(
            injector, probes, 2, chunk_size=16, obs=serial_obs
        )
        parallel = exhaustive_crash_errors(
            injector, probes, 2, chunk_size=16, n_workers=2,
            obs=parallel_obs,
        )
        assert np.array_equal(serial, parallel)
        assert serial_obs.trace.fingerprint() == parallel_obs.trace.fingerprint()

    def test_adaptive_look_events_identical_serial_vs_parallel(
        self, net, probes
    ):
        injector = FaultInjector(net)
        sampler = FixedDistributionSampler(net, (2, 1))
        results = {}
        for workers, obs in (
            (0, RunObserver()),
            (2, RunObserver()),
        ):
            errors, report = adaptive_campaign_errors(
                injector, probes, sampler, 4096,
                threshold=0.05, target_ci=0.2,
                min_scenarios=512, seed=9, n_workers=workers, obs=obs,
            )
            results[workers] = (errors, report, obs)
        (e0, r0, o0), (e2, r2, o2) = results[0], results[2]
        assert np.array_equal(e0, e2)
        assert r0 == r2
        assert o0.trace.fingerprint() == o2.trace.fingerprint()
        assert o0.metrics.value("repro_adaptive_looks") == r0.looks
        assert o0.metrics.value("repro_adaptive_stop_epoch") == r0.n_scenarios

    def test_events_false_drops_point_events_only(self, net, probes):
        injector = FaultInjector(net)
        sampler = FixedDistributionSampler(net, (2, 1))
        quiet = RunObserver(events=False)
        adaptive_campaign_errors(
            injector, probes, sampler, 2048,
            threshold=0.05, target_ci=0.2,
            min_scenarios=512, seed=9, obs=quiet,
        )
        names = {span.name for _, span in quiet.trace.walk()}
        assert "block" in names
        assert all(not span.events for _, span in quiet.trace.walk())


# -- the dispatcher + ObsSpec --------------------------------------------


def _campaign_spec(net_path, **kw):
    return CampaignSpec(
        network=NetworkRef(path=str(net_path)),
        sampler=SamplerSpec(kind="fixed", distribution=(2, 1)),
        fault=FaultSpec(kind="crash"),
        n_scenarios=400,
        batch=6,
        seed=5,
        **kw,
    )


@pytest.fixture(scope="module")
def net_path(net, tmp_path_factory):
    from repro.network import save_network

    path = tmp_path_factory.mktemp("obs") / "net.npz"
    save_network(net, path)
    return path


class TestDispatch:
    def test_run_span_wraps_every_spec_kind(self, net_path):
        obs = RunObserver()
        result = run(_campaign_spec(net_path), obs=obs)
        (root,) = obs.trace.spans
        assert root.name == "run"
        assert root.attrs["kind"] == "campaign"
        assert root.attrs["spec"] == _campaign_spec(net_path).content_hash()
        assert root.children[0].name == "network-load"
        assert obs.metrics.value("repro_scenarios") == 400
        base = run(_campaign_spec(net_path))
        assert np.array_equal(base.errors, result.errors)

    def test_run_chaos_with_obs_matches_plain_run(self, net_path):
        spec = ChaosSpec(
            network=NetworkRef(path=str(net_path)),
            epsilon=0.3,
            epsilon_prime=0.1,
            processes=(ProcessSpec(kind="poisson", rate=0.05),),
            detectors=(DetectorSpec(kind="threshold"),),
            policy=PolicySpec(kind="rejuvenate", period=5),
            epochs=12,
            replicas=8,
            batch=6,
            seed=4,
        )
        obs = RunObserver()
        observed = run(spec, obs=obs)
        plain = run(spec)
        assert observed.availability == plain.availability
        assert obs.trace.spans[0].attrs["kind"] == "chaos"
        assert obs.metrics.value("repro_blocks") >= 1

    def test_adaptive_spec_records_stop_gauges(self, net_path):
        spec = _campaign_spec(
            net_path,
            threshold=0.05,
            stopping=StoppingSpec(target_ci=0.2, min_scenarios=128),
        )
        obs = RunObserver()
        result = run(spec, obs=obs)
        rep = result.adaptive
        assert obs.metrics.value("repro_adaptive_stop_epoch") == rep.n_scenarios
        assert obs.metrics.value("repro_adaptive_looks") == rep.looks

    def test_obs_spec_autorecords_to_disk(self, net_path, tmp_path):
        record_path = tmp_path / "rec"
        spec = _campaign_spec(
            net_path, obs=ObsSpec(record=str(record_path))
        )
        base = run(_campaign_spec(net_path))
        result = run(spec)
        assert np.array_equal(base.errors, result.errors), (
            "an ObsSpec must never change results"
        )
        record = load_run_record(record_path)
        assert record["spec"] == spec.to_dict()
        trace = RunTrace.from_dict(record["trace"])
        assert trace.spans[0].name == "run"
        prof = profile_from_metrics(record["metrics"])
        assert prof.scenarios == 400

    def test_obs_spec_disabled_records_nothing(self, net_path, tmp_path):
        record_path = tmp_path / "off"
        spec = _campaign_spec(
            net_path, obs=ObsSpec(enabled=False, record=str(record_path))
        )
        run(spec)
        assert not record_path.with_name("off.json").exists()

    def test_obs_spec_omitted_keeps_payload_and_hash(self, net_path):
        spec = _campaign_spec(net_path)
        assert "obs" not in spec.to_dict()
        with_obs = _campaign_spec(net_path, obs=ObsSpec())
        assert with_obs.to_dict()["obs"]["spec"] == "obs"
        assert spec.content_hash() != with_obs.content_hash()

    def test_obs_spec_rejects_blank_record_path(self):
        with pytest.raises(SpecError, match="non-empty"):
            ObsSpec(record="  ")


# -- persistence + CLI ---------------------------------------------------


class TestRecordAndCli:
    def test_record_round_trips_and_checks_version(self, tmp_path):
        obs = RunObserver()
        with obs.span("run", kind="campaign"):
            obs.metrics.counter("repro_blocks").inc()
        obs.finalize()
        path = save_run_record(obs.record({"spec": "campaign"}), tmp_path / "r")
        assert path.name == "r.json"
        record = load_run_record(tmp_path / "r")  # suffix optional
        assert record["record_version"] == RECORD_VERSION
        bad = dict(record, record_version=RECORD_VERSION + 1)
        (tmp_path / "bad.json").write_text(json.dumps(bad))
        with pytest.raises(ValueError, match="version mismatch"):
            load_run_record(tmp_path / "bad.json")

    @pytest.fixture
    def record_file(self, net_path, tmp_path):
        obs = RunObserver()
        run(_campaign_spec(net_path), obs=obs)
        return save_run_record(
            obs.record(_campaign_spec(net_path).to_dict()), tmp_path / "rec"
        )

    def test_cli_obs_default_view(self, record_file, capsys):
        assert main(["obs", str(record_file)]) == 0
        out = capsys.readouterr().out
        assert "spec: campaign" in out
        assert "run" in out and "block" in out
        assert "repro_scenarios_total 400" in out

    def test_cli_obs_openmetrics(self, record_file, capsys):
        assert main(["obs", str(record_file), "--openmetrics"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")
        assert "# TYPE repro_scenarios counter" in out

    def test_cli_obs_jsonl(self, record_file, capsys):
        assert main(["obs", str(record_file), "--jsonl"]) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert rows[0]["name"] == "run"

    def test_cli_obs_profile_view(self, record_file, capsys):
        assert main(["obs", str(record_file), "--profile"]) == 0
        out = capsys.readouterr().out
        assert "phase" in out and "gemm" in out

    def test_cli_obs_missing_record(self, tmp_path, capsys):
        assert main(["obs", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_cli_campaign_obs_flag_writes_record(
        self, net_path, tmp_path, capsys
    ):
        record = tmp_path / "cli_rec"
        code = main([
            "campaign", str(net_path), "--distribution", "2,1",
            "--n-scenarios", "400", "--obs", str(record),
        ])
        assert code == 0
        assert "obs record ->" in capsys.readouterr().out
        assert load_run_record(record)["spec"]["spec"] == "campaign"

    def test_cli_survival_profile_and_obs(self, net_path, tmp_path, capsys):
        record = tmp_path / "sur_rec"
        code = main([
            "survival", str(net_path), "--p-fail", "0.05",
            "--epsilon", "0.3", "--epsilon-prime", "0.1",
            "--method", "monte_carlo", "--n-trials", "50",
            "--profile", "--obs", str(record),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "phase" in out  # the profile table printed
        assert load_run_record(record)["spec"]["spec"] == "survival"


# -- profiling in parallel (the lifted restriction) ----------------------


class TestParallelProfiling:
    def test_profile_folds_across_workers(self, net, probes):
        injector = FaultInjector(net)
        sampler = FixedDistributionSampler(net, (2, 1))
        profile = PhaseProfile()
        serial = sampled_campaign_errors(
            injector, probes, sampler, 2300, seed=5
        )
        parallel = sampled_campaign_errors(
            injector, probes, sampler, 2300, seed=5, n_workers=2,
            profile=profile,
        )
        assert np.array_equal(serial, parallel)
        assert profile.scenarios == 2300
        assert profile.seconds["gemm"] > 0


# -- the threaded backend's tile metrics ---------------------------------


class TestThreadedObs:
    def test_tile_metrics_and_parallel_profile(self, net, probes):
        from repro.backends.threaded import ThreadedMaskEngine
        from repro.faults.masks import MaskCampaignEngine

        injector = FaultInjector(net)
        sampler = FixedDistributionSampler(net, (2, 1))
        batch = sampler.sample(64, rng=np.random.default_rng(0))
        reference = MaskCampaignEngine(injector, probes).evaluate(batch)
        obs = RunObserver()
        with ThreadedMaskEngine(
            injector, probes, workers=2, tile=16
        ) as eng:
            eng.obs = obs
            eng.profile = obs.profile
            observed = eng.evaluate(batch)
        assert np.array_equal(reference, observed)
        tiles = sum(
            series.value
            for name, _, _, _, rows in obs.metrics.families()
            if name == "repro_tiles"
            for _, series in rows
        )
        assert tiles == 4  # 64 scenarios / 16-wide tiles
        assert obs.metrics.histogram(
            "repro_tile_queue_wait_seconds"
        ).count == 4
        assert obs.profile.seconds["gemm"] > 0


# -- artifact-store cache accounting -------------------------------------


def _run_toy_obs(seed: int = 7):
    return ExperimentResult(
        experiment_id="toy-obs",
        description="toy",
        shape_checks={"ok": True},
    )


TOY = RegisteredExperiment(
    "toy-obs", _run_toy_obs, title="Toy", anchor="Toy", tags=("toy",),
    runtime="fast", order=1, module=__name__,
)


class TestCacheAccounting:
    def test_manifest_counts_hits_and_misses(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        obs = RunObserver()
        store.run(TOY, obs=obs)
        store.run(TOY, obs=obs)
        store.run(TOY, force=True, obs=obs)
        cache = store.load_manifest()["cache"]
        assert cache == {"hits": 1, "misses": 2}
        assert obs.metrics.value("repro_artifact_cache_hits") == 1
        assert obs.metrics.value("repro_artifact_cache_misses") == 2
        events = [
            (name, attrs["experiment"])
            for _, span in obs.trace.walk()
            for name, _, attrs in span.events
        ]
        assert events == [
            ("cache-miss", "toy-obs"),
            ("cache-hit", "toy-obs"),
            ("cache-miss", "toy-obs"),
        ]

    def test_run_many_batches_the_hit_bump(self, tmp_path):
        store = ArtifactStore(tmp_path / "results")
        store.run_many([TOY])
        store.run_many([TOY])
        assert store.load_manifest()["cache"] == {"hits": 1, "misses": 1}

    def test_report_cli_prints_cache_line(self, tmp_path, capsys):
        store = ArtifactStore(tmp_path / "results")
        store.run(TOY)
        store.run(TOY)
        code = main([
            "report", "--results-dir", str(tmp_path / "results"),
            "--output", str(tmp_path / "EXP.md"),
        ])
        assert code == 0
        assert "artifact cache: 1 hits, 1 misses" in capsys.readouterr().out
