"""Public-API hygiene: exports exist, subpackages import cleanly, and
the top-level namespace matches the README's promises."""

import importlib

import pytest

SUBPACKAGES = [
    "repro",
    "repro.core",
    "repro.network",
    "repro.training",
    "repro.faults",
    "repro.distributed",
    "repro.quantization",
    "repro.analysis",
    "repro.experiments",
    "repro.specs",
    "repro.service",
    "repro.cli",
]

#: The spec family `repro.__init__` promises (and docs/api.md documents).
SPEC_EXPORTS = [
    "NetworkRef",
    "FaultSpec",
    "SamplerSpec",
    "EngineSpec",
    "CampaignSpec",
    "SurvivalSpec",
    "ProcessSpec",
    "DetectorSpec",
    "PolicySpec",
    "TrafficSpec",
    "TelemetrySpec",
    "ChaosSpec",
    "ServiceSpec",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        importlib.import_module(name)

    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_all_exports_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in getattr(module, "__all__", []):
            assert hasattr(module, symbol), f"{name}.__all__ lists missing {symbol}"

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"


class TestTopLevelPromises:
    def test_readme_quickstart_names(self):
        """The names used by README's quickstart must be top-level."""
        import repro

        for name in (
            "build_mlp",
            "certify",
            "FaultInjector",
            "random_failure_scenario",
        ):
            assert hasattr(repro, name)

    def test_core_reexports(self):
        from repro import (  # noqa: F401
            check_theorem1,
            check_theorem3,
            check_theorem4,
            check_theorem5,
            forward_error_propagation,
            precision_error_bound,
            synapse_fep,
            theorem1_max_crashes,
        )

    def test_experiment_ids_match_paper_anchors(self):
        from repro.experiments import ALL_EXPERIMENTS

        expected = {
            "figure1", "figure2", "figure3",
            "theorem1", "theorem2", "theorem3", "theorem4", "theorem5",
            "lemma1",
            "corollary1_overprovision", "corollary2_boosting",
            "tradeoff_k", "tradeoff_weights",
            "section6_conv",
            "intro_pruning", "baseline_smr",
            "extension_reliability", "extension_fep_learning",
            "chaos_survival", "chaos_rejuvenation",
            "quantized_probes", "adaptive_sampling",
            "incident_replay",
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_every_experiment_callable_without_args(self):
        from repro.experiments import ALL_EXPERIMENTS
        import inspect

        for name, fn in ALL_EXPERIMENTS.items():
            sig = inspect.signature(fn)
            required = [
                p for p in sig.parameters.values()
                if p.default is inspect.Parameter.empty
                and p.kind is not inspect.Parameter.VAR_KEYWORD
            ]
            assert not required, f"{name} requires positional args"


class TestSpecLayerPromises:
    """The declarative run-spec layer is the stable public API: the
    whole family plus run() is exported at the top level (the drift
    this test previously allowed is what docs/api.md now gates)."""

    def test_spec_family_is_top_level(self):
        import repro

        for name in SPEC_EXPORTS + ["run", "SPEC_VERSION", "SpecError",
                                    "spec_from_dict", "load_spec",
                                    "save_spec"]:
            assert hasattr(repro, name), f"repro.{name} not exported"
            assert name in repro.__all__, f"repro.{name} missing from __all__"

    def test_specs_are_frozen_dataclasses(self):
        import dataclasses

        import repro

        for name in SPEC_EXPORTS:
            cls = getattr(repro, name)
            assert dataclasses.is_dataclass(cls), f"{name} is not a dataclass"
            assert cls.__dataclass_params__.frozen, f"{name} is not frozen"

    def test_run_dispatches_every_runnable_spec(self):
        """run()'s docstring promises the three workload returns."""
        import repro

        doc = repro.run.__doc__ or ""
        for name in ("CampaignSpec", "SurvivalSpec", "ChaosSpec"):
            assert name in doc

    def test_deprecated_entry_points_still_exported(self):
        import repro

        assert "monte_carlo_campaign" in repro.__all__
        assert "run_chaos_campaign" in repro.__all__


class TestDocstringCoverage:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_module_docstrings(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} lacks a module docstring"

    def test_public_callables_documented(self):
        """Every public callable/class in core and faults is documented."""
        for pkg_name in ("repro.core", "repro.faults", "repro.distributed"):
            pkg = importlib.import_module(pkg_name)
            for symbol in pkg.__all__:
                obj = getattr(pkg, symbol)
                if callable(obj):
                    assert obj.__doc__, f"{pkg_name}.{symbol} lacks a docstring"
