"""Unit tests for the over-provisioning constructions (Corollary 1)."""

import numpy as np
import pytest

from repro.core.bounds import check_theorem3
from repro.core.fep import network_fep
from repro.core.overprovision import (
    barron_nmin,
    minimal_replication_factor,
    replicate_network,
)
from repro.network import build_conv_net, build_mlp


class TestBarron:
    def test_inverse_scaling(self):
        assert barron_nmin(0.1) == 10
        assert barron_nmin(0.01) == 100
        assert barron_nmin(0.5, constant=2.0) == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            barron_nmin(0.0)
        with pytest.raises(ValueError):
            barron_nmin(0.1, constant=-1.0)


class TestReplication:
    def test_function_exactly_preserved(self, small_net, batch):
        for r in (2, 3, 5):
            rep = replicate_network(small_net, r)
            np.testing.assert_allclose(
                rep.forward(batch), small_net.forward(batch), atol=1e-12
            )

    def test_sizes_and_weight_maxes(self, small_net):
        rep = replicate_network(small_net, 4)
        assert rep.layer_sizes == tuple(4 * n for n in small_net.layer_sizes)
        wm_orig = small_net.weight_maxes()
        wm_rep = rep.weight_maxes()
        # Stage 1 (from inputs) is unchanged; stages >= 2 shrink by r.
        assert wm_rep[0] == pytest.approx(wm_orig[0])
        for a, b in zip(wm_rep[1:], wm_orig[1:]):
            assert a == pytest.approx(b / 4)

    def test_fep_shrinks_for_fixed_distribution(self, small_net):
        base = network_fep(small_net, (1, 1), mode="crash")
        rep = replicate_network(small_net, 4)
        assert network_fep(rep, (1, 1), mode="crash") < base

    def test_r_one_is_copy(self, small_net, batch):
        rep = replicate_network(small_net, 1)
        np.testing.assert_array_equal(rep.forward(batch), small_net.forward(batch))
        rep.scale_weights(0.0)
        assert np.abs(small_net.forward(batch)).max() > 0

    def test_invalid_r(self, small_net):
        with pytest.raises(ValueError):
            replicate_network(small_net, 0)

    def test_conv_layers_rejected(self):
        net = build_conv_net(8, [3], seed=0)
        with pytest.raises(TypeError, match="dense"):
            replicate_network(net, 2)

    def test_bias_replicated(self, batch):
        net = build_mlp(3, [4, 3], seed=0)
        for layer in net.layers:
            layer.bias[:] = np.random.default_rng(0).normal(size=layer.bias.shape)
        rep = replicate_network(net, 3)
        np.testing.assert_allclose(rep.forward(batch), net.forward(batch), atol=1e-12)


class TestMinimalReplication:
    def test_finds_tolerating_factor(self):
        net = build_mlp(
            2, [6, 5], init={"name": "uniform", "scale": 0.5},
            output_scale=0.5, seed=0,
        )
        dist = (2, 1)
        assert not check_theorem3(net, dist, 0.3, 0.1, mode="crash")
        r, rep = minimal_replication_factor(net, dist, 0.3, 0.1, mode="crash")
        assert r > 1
        assert check_theorem3(rep, dist, 0.3, 0.1, mode="crash")

    def test_minimality(self):
        net = build_mlp(
            2, [6, 5], init={"name": "uniform", "scale": 0.5},
            output_scale=0.5, seed=0,
        )
        dist = (2, 1)
        r, _ = minimal_replication_factor(net, dist, 0.3, 0.1, mode="crash")
        if r > 1:
            smaller = replicate_network(net, r - 1)
            assert not check_theorem3(smaller, dist, 0.3, 0.1, mode="crash")

    def test_already_tolerant_returns_one(self):
        net = build_mlp(
            2, [6], init={"name": "uniform", "scale": 0.01},
            output_scale=0.01, seed=0,
        )
        r, _ = minimal_replication_factor(net, (1,), 0.5, 0.1, mode="crash")
        assert r == 1

    def test_unreachable_budget_raises(self):
        net = build_mlp(
            2, [4], init={"name": "uniform", "scale": 1.0}, output_scale=1.0, seed=0
        )
        with pytest.raises(ValueError, match="no replication factor"):
            minimal_replication_factor(
                net, (3,), 0.100001, 0.1, mode="crash", max_r=2
            )
