"""Unit tests for the temporal chaos subsystem (repro.chaos)."""

import numpy as np
import pytest

from repro.chaos import (
    REPLICA_BLOCK,
    CertifiedAlarmDetector,
    ComponentLifetimeProcess,
    ConstantTraffic,
    CorrelatedBlastProcess,
    CUSUMDetector,
    DetectorRepairPolicy,
    DiurnalTraffic,
    EpochWindow,
    FleetState,
    NoRepairPolicy,
    ParetoBurstyTraffic,
    PeriodicRejuvenationPolicy,
    PoissonArrivalProcess,
    SpareActivationPolicy,
    ThresholdDetector,
    TransientBurstProcess,
    recommended_spares,
    run_chaos_campaign,
)
from repro.distributed.boosting import (
    LatencyModel,
    boosted_reset_masks,
    simulate_boosted_run,
)
from repro.distributed.replication import ReplicatedEnsemble
from repro.faults.injector import FaultInjector
from repro.faults.reliability import mission_survival_curve
from repro.faults.scenarios import crash_scenario
from repro.network import build_mlp
from repro.network.model import NeuronAddress


@pytest.fixture
def sensitive_net():
    """Weights large enough that accumulated crashes break a 0.4 budget."""
    return build_mlp(
        2,
        [12, 10],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.3,
        seed=5,
    )


@pytest.fixture
def probes():
    return np.random.default_rng(5).random((12, 2))


def _campaign(net, x, processes, **kw):
    defaults = dict(
        epochs=24, n_replicas=20, epsilon=0.5, epsilon_prime=0.1, seed=11
    )
    defaults.update(kw)
    return run_chaos_campaign(net, x, processes, **defaults)


class TestProcesses:
    def _state(self, sizes=(6, 5), R=8):
        return FleetState(sizes, R)

    def test_lifetime_accumulates_monotonically(self):
        state = self._state()
        proc = ComponentLifetimeProcess(0.2)
        proc.reset(8, state.layer_sizes)
        rng = np.random.default_rng(0)
        prev = 0
        for epoch in range(20):
            state.begin_epoch(epoch)
            proc.step(state, rng)
            dead = int(sum(c.sum() for c in state.crash))
            assert dead >= prev
            prev = dead
            state.advance_ages()
        assert prev > 0

    def test_exponential_matches_mission_lifetime_law(self):
        """Survival after t epochs is exp(-rate * t) — the law
        mission_survival_curve integrates against."""
        rate, t, R = 0.05, 30, 400
        state = FleetState((50,), R)
        proc = ComponentLifetimeProcess(rate)
        proc.reset(R, state.layer_sizes)
        rng = np.random.default_rng(3)
        for epoch in range(t):
            state.begin_epoch(epoch)
            proc.step(state, rng)
            state.advance_ages()
        alive = 1.0 - state.crash[0].mean()
        assert alive == pytest.approx(float(np.exp(-rate * t)), abs=0.01)

    def test_weibull_wearout_accelerates(self):
        """shape > 1: old components fail faster than young ones."""
        R = 600
        rng = np.random.default_rng(4)
        proc = ComponentLifetimeProcess(0.05, shape=2.0)
        proc.reset(R, (40,))
        young, old = FleetState((40,), R), FleetState((40,), R)
        for a in old.age:
            a += 20.0
        young.begin_epoch(0)
        proc.step(young, rng)
        old.begin_epoch(0)
        proc.step(old, rng)
        assert old.crash[0].mean() > young.crash[0].mean() * 2

    def test_poisson_hits_expected_count(self):
        R, n, rate, epochs = 200, 30, 0.5, 10
        state = FleetState((n,), R)
        proc = PoissonArrivalProcess(rate)
        proc.reset(R, (n,))
        rng = np.random.default_rng(7)
        for epoch in range(epochs):
            state.begin_epoch(epoch)
            proc.step(state, rng)
        # E[dead] = n * (1 - (1 - 1/n)^(rate * epochs)) per replica.
        expected = n * (1.0 - (1.0 - 1.0 / n) ** (rate * epochs))
        assert state.crash[0].sum(axis=1).mean() == pytest.approx(
            expected, rel=0.15
        )

    def test_burst_sets_gates_then_expires(self):
        state = self._state()
        proc = TransientBurstProcess(1.0, duration=2, fraction=0.5, hit_p=0.3)
        proc.reset(8, state.layer_sizes)
        rng = np.random.default_rng(1)
        state.begin_epoch(0)
        proc.step(state, rng)
        assert state.has_transients
        gated0 = sum((g > 0.0).sum() for g in state.transient_p)
        assert gated0 > 0
        assert all(
            np.all((g == 0.0) | (g == 0.3)) for g in state.transient_p
        )
        # No permanent damage from a burst.
        assert not any(c.any() for c in state.crash)
        # After the burst expires (and no restart because remaining
        # gates re-trigger only at remaining == 0).
        state.begin_epoch(1)
        proc.step(state, rng)
        proc.on_repair(state, np.ones(8, dtype=bool))
        state.begin_epoch(2)
        assert not state.has_transients

    def test_blast_kills_a_layer_slice_at_once(self):
        state = self._state(sizes=(10, 8), R=4)
        proc = CorrelatedBlastProcess(1.0, fraction=0.5)
        proc.reset(4, state.layer_sizes)
        rng = np.random.default_rng(2)
        state.begin_epoch(0)
        proc.step(state, rng)
        for r in range(4):
            per_layer = [int(c[r].sum()) for c in state.crash]
            # Exactly one layer hit, with round(fraction * N_l) kills.
            assert sorted(
                (hits, n)
                for hits, n in zip(per_layer, state.layer_sizes)
                if hits
            ) in ([(4, 8)], [(5, 10)])

    def test_determinism(self):
        runs = []
        for _ in range(2):
            state = self._state()
            procs = [
                PoissonArrivalProcess(0.3),
                TransientBurstProcess(0.2),
                CorrelatedBlastProcess(0.1),
            ]
            rng = np.random.default_rng(42)
            for p in procs:
                p.reset(8, state.layer_sizes)
            for epoch in range(10):
                state.begin_epoch(epoch)
                for p in procs:
                    p.step(state, rng)
                state.advance_ages()
            runs.append(
                [c.copy() for c in state.crash]
                + [g.copy() for g in state.transient_p]
            )
        for a, b in zip(*runs):
            assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentLifetimeProcess(-0.1)
        with pytest.raises(ValueError):
            ComponentLifetimeProcess(0.1, shape=0.0)
        with pytest.raises(ValueError):
            TransientBurstProcess(1.5)
        with pytest.raises(ValueError):
            CorrelatedBlastProcess(0.1, fraction=0.0)
        proc = PoissonArrivalProcess((0.1, 0.2, 0.3))
        with pytest.raises(ValueError, match="layers"):
            proc.reset(4, (6, 5))


class TestDeployment:
    def test_window_compiles_the_fleet_grid(self, sensitive_net, probes):
        """A compiled window row equals the scalar injector's view of
        the same (epoch, replica) crash set."""
        sizes = sensitive_net.layer_sizes
        R, W = 3, 4
        state = FleetState(sizes, R)
        win = EpochWindow(sizes, W, R)
        proc = ComponentLifetimeProcess(0.15)
        proc.reset(R, sizes)
        rng = np.random.default_rng(9)
        snapshots = []
        for epoch in range(W):
            state.begin_epoch(epoch)
            proc.step(state, rng)
            win.snapshot(state)
            snapshots.append([c.copy() for c in state.crash])
            state.advance_ages()
        batch = win.compile()
        assert batch.num_scenarios == W * R
        injector = FaultInjector(
            sensitive_net, capacity=sensitive_net.output_bound
        )
        errors = injector.output_errors_many(probes, batch)
        for e in range(W):
            for r in range(R):
                addresses = [
                    NeuronAddress(l0 + 1, int(i))
                    for l0, mask in enumerate(snapshots[e])
                    for i in np.nonzero(mask[r])[0]
                ]
                scenario = (
                    crash_scenario(addresses) if addresses else None
                )
                expected = (
                    injector.output_error(probes, scenario)
                    if scenario
                    else 0.0
                )
                assert errors[e * R + r] == pytest.approx(expected, abs=1e-12)

    def test_window_overflow_guard(self):
        win = EpochWindow((4,), 1, 2)
        state = FleetState((4,), 2)
        win.snapshot(state)
        with pytest.raises(RuntimeError, match="full"):
            win.snapshot(state)

    def test_overlapping_transients_superpose(self):
        """Two transients on one cell combine as independent Bernoulli
        gates (1 - (1-p1)(1-p2)), never as the milder of the two."""
        state = FleetState((4,), 2)
        cells = np.zeros((2, 4), dtype=bool)
        cells[0, 1] = True
        state.set_transient(0, cells, 0.9)
        state.set_transient(0, cells, 0.2)
        assert state.transient_p[0][0, 1] == pytest.approx(
            1.0 - (1.0 - 0.9) * (1.0 - 0.2)
        )
        # The compiled gate carries the combined hit probability.
        win = EpochWindow((4,), 1, 2)
        win.snapshot(state)
        batch = win.compile()
        assert batch.gate_p is not None
        assert batch.zero_masks[0][0, 1]
        assert batch.gate_p[0][0, 1] == pytest.approx(0.92)

    def test_repair_clears_masks_and_ages(self):
        state = FleetState((5, 4), 3)
        state.crash[0][1] = True
        state.age[0] += 7
        fixed = np.array([False, True, False])
        state.repair(fixed)
        assert not state.crash[0][1].any()
        assert np.all(state.age[0][1] == 0) and np.all(state.age[0][0] == 7)


class TestTraffic:
    def test_constant(self):
        t = ConstantTraffic(500.0)
        req = t.requests(10, np.random.default_rng(0))
        assert np.all(req == 500.0)

    def test_diurnal_cycles(self):
        t = DiurnalTraffic(100.0, amplitude=0.5, period=8)
        req = t.requests(16, np.random.default_rng(0))
        assert np.all(req >= 0)
        assert req[:8] == pytest.approx(req[8:])
        assert req.max() > req.min()

    def test_pareto_heavy_tail(self):
        t = ParetoBurstyTraffic(100.0, alpha=1.5)
        req = t.requests(4000, np.random.default_rng(0))
        assert np.all(req >= 100.0)
        assert req.max() > 5 * np.median(req)

    def test_probe_counts_proportional(self):
        t = DiurnalTraffic(100.0)
        req = np.array([0.0, 50.0, 100.0])
        counts = t.probe_counts(req, 16)
        assert counts.tolist() == [1, 8, 16]

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantTraffic(-1.0)
        with pytest.raises(ValueError):
            DiurnalTraffic(100, amplitude=1.5)
        with pytest.raises(ValueError):
            ParetoBurstyTraffic(100, alpha=1.0)


class TestDetectors:
    def test_threshold_exact(self):
        det = ThresholdDetector(0.5)
        det.reset(3)
        errors = np.array([[0.1, 0.6, 0.5], [0.51, 0.2, 0.9]])
        fired = det.update(errors, 0)
        assert fired.tolist() == [
            [False, True, False],
            [True, False, True],
        ]

    def test_cusum_catches_slow_drift_a_threshold_misses(self):
        cusum = CUSUMDetector(drift=0.1, threshold=0.5)
        cusum.reset(1)
        thr = ThresholdDetector(0.5)
        thr.reset(1)
        # Sustained 0.25 — under the 0.5 line forever, but drifting.
        errors = np.full((6, 1), 0.25)
        assert not thr.update(errors, 0).any()
        fired = cusum.update(errors, 0)
        assert fired.any()
        # After firing the statistic re-arms.
        k = int(np.argmax(fired[:, 0]))
        assert not fired[k + 1, 0] if k + 1 < 6 else True

    def test_cusum_ignores_single_blip(self):
        cusum = CUSUMDetector(drift=0.2, threshold=1.0)
        cusum.reset(1)
        errors = np.zeros((8, 1))
        errors[3, 0] = 0.9
        assert not cusum.update(errors, 0).any()

    def test_cusum_resets_on_repair(self):
        cusum = CUSUMDetector(drift=0.0, threshold=10.0)
        cusum.reset(2)
        cusum.update(np.full((3, 2), 1.0), 0)
        assert np.all(cusum.s == 3.0)
        cusum.on_repair(np.array([True, False]), 3)
        assert cusum.s.tolist() == [0.0, 3.0]

    def test_certified_alarm_epoch_matches_bound(self, sensitive_net):
        det = CertifiedAlarmDetector(
            sensitive_net, 0.03, 0.5, 0.1, p_threshold=0.5
        )
        e = det.alarm_epoch
        assert e is not None and e > 0
        curve = mission_survival_curve(
            sensitive_net, 0.03, [e - 1, e], 0.5, 0.1
        )
        assert curve[0][1] >= 0.5 > curve[1][1]

    def test_certified_alarm_rearms_after_repair(self, sensitive_net):
        det = CertifiedAlarmDetector(
            sensitive_net, 0.03, 0.5, 0.1, p_threshold=0.5
        )
        det.reset(2)
        e = det.alarm_epoch
        errors = np.zeros((1, 2))
        assert det.update(errors, e).all()
        det.on_repair(np.array([True, False]), e + 1)
        fired = det.update(errors, e + 1 + e)  # replica 0's clock restarted
        assert fired.tolist() == [[True, False]]

    def test_certified_alarm_sees_mid_window_repairs(self, sensitive_net):
        """Repairs land mid-window (policies apply them at epoch
        start); each epoch must be judged against the repair clock as
        of that epoch, not the end-of-window state."""
        det = CertifiedAlarmDetector(
            sensitive_net, 0.03, 0.5, 0.1, p_threshold=0.5
        )
        det.reset(1)
        det.alarm_epoch = 3
        det.on_repair(np.array([True]), 4)  # logged before update runs
        fired = det.update(np.zeros((10, 1)), 0)
        # Alarm at epoch 3 (clock from 0), then at 7 (clock from the
        # epoch-4 repair) — the pre-repair alarm must not be lost.
        assert np.nonzero(fired[:, 0])[0].tolist() == [3, 7]

    def test_certified_alarm_never_fires_at_zero_rate(self, sensitive_net):
        det = CertifiedAlarmDetector(sensitive_net, 0.0, 0.5, 0.1)
        assert det.alarm_epoch is None
        det.reset(2)
        assert not det.update(np.ones((4, 2)), 0).any()


class TestCampaign:
    def test_deterministic_replay(self, sensitive_net, probes):
        kw = dict(
            detectors=[ThresholdDetector(0.4)],
            policy=DetectorRepairPolicy(latency=1),
            traffic=DiurnalTraffic(100.0),
            keep_errors=True,
        )
        a = _campaign(
            sensitive_net, probes, [ComponentLifetimeProcess(0.05)], **kw
        )
        b = _campaign(
            sensitive_net, probes, [ComponentLifetimeProcess(0.05)], **kw
        )
        assert np.array_equal(a.errors, b.errors)
        assert a.to_dict() == b.to_dict()

    def test_serial_equals_parallel_bitwise(self, sensitive_net, probes):
        """The acceptance property: same seed => identical fault
        schedule, detector firings and SLO report, serial == parallel."""
        kw = dict(
            n_replicas=3 * REPLICA_BLOCK + 5,
            detectors=[ThresholdDetector(0.4), CUSUMDetector(0.1, 1.0)],
            policy=DetectorRepairPolicy(latency=1, downtime=1),
            traffic=DiurnalTraffic(100.0),
            keep_errors=True,
            epochs=20,
        )
        procs = [
            ComponentLifetimeProcess(0.05),
            TransientBurstProcess(0.1),
        ]
        serial = _campaign(sensitive_net, probes, procs, n_workers=0, **kw)
        parallel = _campaign(sensitive_net, probes, procs, n_workers=3, **kw)
        assert np.array_equal(serial.errors, parallel.errors)
        assert serial.to_dict() == parallel.to_dict()

    def test_availability_and_ground_truth_consistency(
        self, sensitive_net, probes
    ):
        rep = _campaign(
            sensitive_net,
            probes,
            [ComponentLifetimeProcess(0.08)],
            detectors=[ThresholdDetector(0.3)],
            keep_errors=True,
            epochs=30,
            epsilon_prime=0.2,
        )
        assert rep.n_violation_episodes > 0
        viol = rep.errors > 0.3 + 1e-12
        assert rep.violation_fraction == pytest.approx(viol.mean())
        assert rep.availability == pytest.approx(1.0 - viol.mean())
        # No repairs -> the threshold detector at the budget *is* the
        # ground truth.
        det = rep.detector_stats["threshold"]
        assert det["precision"] == 1.0 and det["recall"] == 1.0
        assert det["firings"] == int(viol.sum())
        assert rep.mttr > 0 and np.isfinite(rep.mtbf)

    def test_no_repair_dominates_certified_mission_curve(
        self, sensitive_net, probes
    ):
        rate = 0.03
        rep = _campaign(
            sensitive_net,
            probes,
            [ComponentLifetimeProcess(rate)],
            epochs=30,
            n_replicas=48,
        )
        empirical = rep.survival_curve()
        for t, certified in mission_survival_curve(
            sensitive_net, rate, [0.0, 10.0, 20.0, 30.0], 0.5, 0.1
        ):
            assert empirical[int(t)] >= certified - 1e-12

    def test_rejuvenation_beats_no_repair(self, sensitive_net, probes):
        procs = lambda: [ComponentLifetimeProcess(0.06, shape=1.5)]
        base = _campaign(
            sensitive_net, probes, procs(), policy=NoRepairPolicy(),
            epochs=40, epsilon_prime=0.2,
        )
        rej = _campaign(
            sensitive_net, probes, procs(),
            policy=PeriodicRejuvenationPolicy(8, (1, 0)),
            epochs=40, epsilon_prime=0.2,
        )
        assert base.n_violation_episodes > 0
        assert rej.availability > base.availability
        assert rej.policy_stats["rejuvenations"] > 0
        assert rej.policy_stats["mean_boost_speedup"] > 1.0

    def test_repair_policy_reduces_mttr(self, sensitive_net, probes):
        procs = lambda: [ComponentLifetimeProcess(0.08)]
        base = _campaign(
            sensitive_net, probes, procs(), epochs=40,
            detectors=[ThresholdDetector(0.3)], epsilon_prime=0.2,
        )
        fixed = _campaign(
            sensitive_net, probes, procs(), epochs=40,
            detectors=[ThresholdDetector(0.3)], epsilon_prime=0.2,
            policy=DetectorRepairPolicy(latency=0, downtime=1),
            epochs_chunk=4,
        )
        assert fixed.policy_stats["repairs"] > 0
        assert fixed.downtime_fraction > 0
        assert fixed.mttr < base.mttr

    def test_spares_deplete_then_fleet_degrades(self, sensitive_net, probes):
        rep = _campaign(
            sensitive_net, probes, [ComponentLifetimeProcess(0.08)],
            epochs=40, n_replicas=8, epsilon_prime=0.2,
            detectors=[ThresholdDetector(0.3)],
            policy=SpareActivationPolicy(2, swap_latency=0),
            epochs_chunk=4,
        )
        assert rep.policy_stats["spares_used"] >= 1
        assert rep.policy_stats["spares_used"] <= 2

    def test_traffic_weighting_changes_availability(
        self, sensitive_net, probes
    ):
        rep = _campaign(
            sensitive_net, probes, [ComponentLifetimeProcess(0.08)],
            traffic=ParetoBurstyTraffic(100.0, alpha=1.5),
            epochs=30, keep_errors=True, epsilon_prime=0.2,
        )
        assert rep.requests is not None and rep.requests.shape == (30,)
        assert rep.violation_fraction > 0
        assert rep.weighted_availability != pytest.approx(rep.availability)

    def test_probe_modulation_path(self, sensitive_net, probes):
        rep = _campaign(
            sensitive_net, probes, [ComponentLifetimeProcess(0.08)],
            traffic=DiurnalTraffic(100.0, modulate_probes=True),
            epochs=16, keep_errors=True,
        )
        full = _campaign(
            sensitive_net, probes, [ComponentLifetimeProcess(0.08)],
            epochs=16, keep_errors=True,
        )
        # Same fault schedule; errors reduced over fewer probes can
        # only be <= the full-batch reduction.
        assert np.all(rep.errors <= full.errors + 1e-12)

    def test_validation(self, sensitive_net, probes):
        with pytest.raises(ValueError, match="epochs"):
            _campaign(
                sensitive_net, probes, [ComponentLifetimeProcess(0.1)],
                epochs=0,
            )
        with pytest.raises(ValueError, match="process"):
            _campaign(sensitive_net, probes, [])
        with pytest.raises(ValueError, match="unique"):
            _campaign(
                sensitive_net, probes, [ComponentLifetimeProcess(0.1)],
                detectors=[ThresholdDetector(0.1), ThresholdDetector(0.2)],
            )
        with pytest.raises(ValueError, match="triggers on detector"):
            _campaign(
                sensitive_net, probes, [ComponentLifetimeProcess(0.1)],
                detectors=[ThresholdDetector(0.1)],
                policy=DetectorRepairPolicy(detector="cusum"),
            )
        with pytest.raises(ValueError, match="needs at least one detector"):
            _campaign(
                sensitive_net, probes, [ComponentLifetimeProcess(0.1)],
                policy=DetectorRepairPolicy(),
            )


class TestRejuvenationInterplay:
    """The replication + boosting machinery the rejuvenation policy
    reuses: reset sets, makespan accounting, ensemble repair."""

    def test_reset_masks_match_simulate_boosted_run(self, sensitive_net):
        rng = np.random.default_rng(8)
        latency = LatencyModel.uniform_random(sensitive_net, rng=rng)
        tolerated = (2, 1)
        masks, base_t, boost_t = boosted_reset_masks(
            sensitive_net, latency, tolerated
        )
        result = simulate_boosted_run(
            sensitive_net, np.random.default_rng(0).random(2), latency,
            tolerated,
        )
        assert tuple(int(m.sum()) for m in masks) == result.resets_per_layer
        assert base_t == pytest.approx(result.baseline_makespan)
        assert boost_t == pytest.approx(result.boosted_makespan)
        assert base_t >= boost_t

    def test_reset_masks_reproduce_boosted_values(self, sensitive_net, probes):
        """Injecting the reset masks as crashes reproduces the boosted
        run's outputs — the policy's lowering is faithful."""
        rng = np.random.default_rng(9)
        latency = LatencyModel.uniform_random(sensitive_net, rng=rng)
        tolerated = (2, 1)
        masks, _, _ = boosted_reset_masks(sensitive_net, latency, tolerated)
        result = simulate_boosted_run(
            sensitive_net, probes, latency, tolerated
        )
        addresses = [
            NeuronAddress(l0 + 1, int(i))
            for l0, m in enumerate(masks)
            for i in np.nonzero(m)[0]
        ]
        injector = FaultInjector(
            sensitive_net, capacity=sensitive_net.output_bound
        )
        out = injector.run(probes, crash_scenario(addresses))
        np.testing.assert_allclose(out, result.output_boosted)

    def test_boosted_reset_masks_validation(self, sensitive_net):
        latency = LatencyModel.constant(sensitive_net)
        with pytest.raises(ValueError, match="length"):
            boosted_reset_masks(sensitive_net, latency, (1,))
        with pytest.raises(ValueError, match="budget"):
            boosted_reset_masks(sensitive_net, latency, (12, 0))

    def test_rejuvenated_smr_fleet_recovers_the_vote(self, sensitive_net):
        """An SMR ensemble whose replicas degrade like a chaos fleet:
        within tolerance the vote holds; repair_all (the rejuvenation
        primitive at machine grain) restores an exact vote."""
        x = np.random.default_rng(1).random((4, 2))
        ensemble = ReplicatedEnsemble.of_copies(sensitive_net, 5)
        ensemble.crash_replica(0)
        ensemble.make_replica_byzantine(1, 9.0)
        assert ensemble.masks_current_failures()
        # The median vote tracks the reference despite the failures.
        assert ensemble.vote_error(x, sensitive_net) == pytest.approx(0.0)
        ensemble.repair_all()
        assert ensemble.num_faulty == 0
        np.testing.assert_allclose(
            ensemble.forward(x), sensitive_net.forward(x)
        )

    def test_rejuvenation_campaign_serial_equals_parallel(
        self, sensitive_net, probes
    ):
        """Seeded serial == parallel for the full rejuvenation loop
        (latency draws, reset masks, repair bookkeeping included)."""
        kw = dict(
            n_replicas=REPLICA_BLOCK + 7,
            policy=PeriodicRejuvenationPolicy(6, (2, 1)),
            epochs=20,
            keep_errors=True,
        )
        procs = lambda: [ComponentLifetimeProcess(0.06)]
        serial = _campaign(
            sensitive_net, probes, procs(), n_workers=0, **kw
        )
        parallel = _campaign(
            sensitive_net, probes, procs(), n_workers=2, **kw
        )
        assert np.array_equal(serial.errors, parallel.errors)
        assert serial.to_dict() == parallel.to_dict()


class TestRecommendedSpares:
    def test_monotone_in_horizon(self, sensitive_net):
        short = recommended_spares(sensitive_net, 32, 0.03, 5, 0.5, 0.1)
        long = recommended_spares(sensitive_net, 32, 0.03, 60, 0.5, 0.1)
        assert 0 <= short <= long <= 32

    def test_zero_rate_needs_no_spares(self, sensitive_net):
        assert recommended_spares(sensitive_net, 32, 0.0, 100, 0.5, 0.1) == 0
