"""Cross-cutting edge cases and behavioural contracts.

These pin down corner behaviours that individual module tests skip:
degenerate sizes, extreme parameters, identity relations across
modules, and failure-path error messages.
"""

import numpy as np
import pytest

from repro.core.fep import forward_error_propagation, network_fep
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (
    FailureScenario,
    byzantine_scenario,
    crash_scenario,
)
from repro.faults.types import ByzantineFault, CrashFault
from repro.network import build_mlp
from repro.network.layers import DenseLayer
from repro.network.model import FeedForwardNetwork


class TestDegenerateSizes:
    def test_one_neuron_network(self, rng):
        net = build_mlp(1, [1], seed=0)
        x = rng.random((4, 1))
        assert net.forward(x).shape == (4, 1)
        # Its single neuron may never "fail tolerably" (f < N requires 0).
        from repro.core.bounds import check_theorem3

        assert not check_theorem3(net, (1,), 0.5, 0.1, mode="crash").tolerated

    def test_wide_shallow_vs_narrow_deep_same_neuron_count(self):
        wide = build_mlp(2, [16], init={"name": "uniform", "scale": 0.1},
                         output_scale=0.1, seed=0)
        deep = build_mlp(2, [4, 4, 4, 4], init={"name": "uniform", "scale": 0.1},
                         output_scale=0.1, seed=0)
        assert wide.num_neurons == deep.num_neurons == 16
        # With K=0.25 << 1, deep nets attenuate early errors.
        f_wide = network_fep(wide, (1,), mode="crash")
        f_deep = network_fep(deep, (1, 0, 0, 0), mode="crash")
        assert f_deep < f_wide

    def test_single_input_single_output(self, rng):
        net = build_mlp(1, [3, 2], seed=1)
        out = net.forward(np.array([0.5]))
        assert out.shape == (1,)


class TestExtremeParameters:
    def test_tiny_capacity_byzantine_nearly_harmless(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1e-9)
        sc = byzantine_scenario([(2, 0)])
        assert inj.output_error(batch, sc) < 1e-8

    def test_huge_k_fep_explodes_geometrically(self):
        sizes, w = [4, 4, 4], [1, 0.5, 0.5, 0.5]
        small = forward_error_propagation([1, 0, 0], sizes, w, 1.0, 1.0)
        big = forward_error_propagation([1, 0, 0], sizes, w, 10.0, 1.0)
        assert big == pytest.approx(small * 100)  # K^(L-1) = K^2

    def test_zero_weight_network_tolerates_everything(self, rng):
        net = build_mlp(2, [5, 4], seed=2)
        net.scale_weights(0.0)
        # All w_m = 0 except stage 1... stage 1 scaled too; Fep = 0.
        assert network_fep(net, (4, 3), mode="crash") == 0.0
        inj = FaultInjector(net, capacity=1.0)
        sc = crash_scenario([(1, 0), (2, 0)])
        assert inj.output_error(rng.random((4, 2)), sc) == 0.0


class TestCrossModuleIdentities:
    def test_crash_equals_byzantine_emitting_zero_when_within_band(
        self, small_net, batch
    ):
        """With capacity >= sup phi, a Byzantine neuron requesting 0 is
        exactly a crash (deviation |0 - y| <= 1 <= C never clips)."""
        inj = FaultInjector(small_net, capacity=1.0)
        a = inj.run(batch, crash_scenario([(1, 3), (2, 2)]))
        b = inj.run(
            batch,
            FailureScenario(
                {
                    addr: ByzantineFault(value=0.0)
                    for addr in crash_scenario([(1, 3), (2, 2)]).neuron_faults
                }
            ),
        )
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_fep_invariant_under_neuron_permutation(self, rng):
        """Fep reads only (N_l, w_m, K): permuting neurons inside a
        layer leaves it unchanged."""
        net = build_mlp(2, [6, 5], seed=3)
        fep_before = network_fep(net, (2, 1), mode="crash")
        perm = rng.permutation(6)
        l1, l2 = net.layers
        permuted = FeedForwardNetwork(
            [
                DenseLayer(2, 6, l1.activation, weights=l1.weights[perm],
                           bias=l1.bias[perm]),
                DenseLayer(6, 5, l2.activation, weights=l2.weights[:, perm],
                           bias=l2.bias),
            ],
            net.output_weights,
        )
        assert network_fep(permuted, (2, 1), mode="crash") == (
            pytest.approx(fep_before)
        )

    def test_scaling_weights_scales_single_layer_fep_linearly(self):
        net = build_mlp(2, [8], init={"name": "uniform", "scale": 0.3},
                        output_scale=0.3, seed=4)
        base = network_fep(net, (2,), mode="crash")
        net.scale_weights(2.0)
        assert network_fep(net, (2,), mode="crash") == pytest.approx(2 * base)

    def test_certificate_survives_serialization(self, tmp_path, rng):
        from repro.core.certification import certify
        from repro.network import load_network, save_network

        net = build_mlp(2, [8, 6], init={"name": "uniform", "scale": 0.08},
                        output_scale=0.05, seed=5)
        cert_a = certify(net, 0.5, 0.1, mode="crash")
        reloaded = load_network(save_network(net, tmp_path / "n.npz"))
        cert_b = certify(reloaded, 0.5, 0.1, mode="crash")
        assert cert_a.maximal_distribution == cert_b.maximal_distribution
        assert cert_a.per_layer_max == cert_b.per_layer_max


class TestErrorMessages:
    def test_injector_reports_bad_scenario_address(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        with pytest.raises(ValueError):
            inj.run(batch, crash_scenario([(1, 50)]))

    def test_fep_reports_lemma1_on_infinite_capacity(self, small_net):
        with pytest.raises(ValueError, match="Lemma 1"):
            network_fep(small_net, (1, 1), capacity=np.inf, mode="byzantine")

    def test_scenario_reports_nonexistent_conv_synapse(self):
        from repro.faults.types import SynapseCrashFault
        from repro.network import build_conv_net

        net = build_conv_net(8, [3], seed=0)
        with pytest.raises(ValueError, match="receptive field"):
            FailureScenario(
                synapse_faults={(1, 0, 6): SynapseCrashFault()}
            ).validate(net)


class TestDeterminism:
    def test_campaign_deterministic_across_chunk_sizes_and_workers(
        self, small_net, batch
    ):
        from repro.faults.campaign import monte_carlo_campaign

        inj = FaultInjector(small_net, capacity=1.0)
        a = monte_carlo_campaign(inj, batch, (2, 1), n_scenarios=30, seed=9,
                                 chunk_size=7)
        b = monte_carlo_campaign(inj, batch, (2, 1), n_scenarios=30, seed=9,
                                 chunk_size=30)
        np.testing.assert_array_equal(a.errors, b.errors)

    def test_experiments_are_deterministic(self):
        from repro.experiments import run_figure2

        a = run_figure2()
        b = run_figure2()
        assert a.rows == b.rows
