"""Documentation consistency gate (``make docs-check``).

Fails when the generated/maintained docs drift from the experiment
registry: a registered experiment missing from EXPERIMENTS.md or
docs/paper_map.md, an experiment module or entry point without a
docstring, or a README that lost its links. Runs in the tier-1 suite
and standalone via the ``docs`` marker.
"""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro.experiments as exp_pkg
from repro.experiments import registry

pytestmark = pytest.mark.docs

ROOT = Path(__file__).resolve().parent.parent


def _read(relpath: str) -> str:
    path = ROOT / relpath
    assert path.exists(), f"{relpath} is missing (see README / Makefile)"
    return path.read_text(encoding="utf-8")


def test_experiments_md_lists_every_registered_experiment():
    text = _read("EXPERIMENTS.md")
    for exp in registry.all_experiments():
        assert f"`{exp.experiment_id}`" in text, (
            f"{exp.experiment_id} missing from EXPERIMENTS.md — "
            "regenerate with `python -m repro report`"
        )
        assert f"`{exp.command}`" in text


def test_paper_map_lists_every_registered_experiment():
    text = _read("docs/paper_map.md")
    for exp in registry.all_experiments():
        assert f"`{exp.experiment_id}`" in text, (
            f"{exp.experiment_id} missing from docs/paper_map.md"
        )


def test_paper_map_points_at_real_modules():
    text = _read("docs/paper_map.md")
    for exp in registry.all_experiments():
        relpath = "src/" + exp.module.replace(".", "/") + ".py"
        assert relpath in text, f"{relpath} missing from docs/paper_map.md"
        assert (ROOT / relpath).exists()


def test_readme_links_the_documentation_set():
    text = _read("README.md")
    for link in ("DESIGN.md", "EXPERIMENTS.md", "docs/paper_map.md",
                 "docs/api.md"):
        assert link in text, f"README.md lost its link to {link}"


def test_api_md_documents_every_exported_spec_class():
    """docs/api.md is the spec reference: every spec class exported by
    repro.specs must appear in its reference tables, plus the
    dispatcher itself."""
    import repro.specs as specs_pkg

    text = _read("docs/api.md")
    spec_classes = [
        name
        for name in specs_pkg.__all__
        if name[0].isupper() and name.isidentifier() and not name.isupper()
    ]
    assert spec_classes, "repro.specs exports no spec classes?"
    for name in spec_classes:
        assert f"`{name}`" in text, (
            f"docs/api.md is missing exported spec class {name} — every "
            "spec in the public API must be documented"
        )
    assert "repro.run" in text, "docs/api.md lost the dispatcher reference"


def test_api_md_documents_every_spec_field():
    """The reference table covers every field of every spec dataclass
    (field name appearing in backticks) — a new field must document its
    default and which engine channel it lowers to."""
    import dataclasses

    from repro.specs.model import _SPEC_TYPES

    text = _read("docs/api.md")
    for tag, cls in sorted(_SPEC_TYPES.items()):
        for f in dataclasses.fields(cls):
            assert f"`{f.name}`" in text, (
                f"docs/api.md is missing field {cls.__name__}.{f.name}"
            )


def test_readme_quickstart_uses_the_spec_api():
    text = _read("README.md")
    assert "repro.run" in text or "run(spec" in text, (
        "README quickstart no longer shows the spec-layer entry point"
    )
    assert "--dump-spec" in text and "--spec" in text, (
        "README lost the CLI spec round-trip story"
    )


def test_design_md_documents_the_pipeline():
    text = _read("DESIGN.md")
    for needle in ("registry", "artifact", "EXPERIMENTS.md"):
        assert needle in text


def test_every_experiment_module_has_a_docstring():
    for info in pkgutil.iter_modules(exp_pkg.__path__):
        module = importlib.import_module(f"repro.experiments.{info.name}")
        assert (module.__doc__ or "").strip(), (
            f"repro.experiments.{info.name} has no module docstring"
        )


def test_every_registered_entry_point_has_a_docstring():
    for exp in registry.all_experiments():
        assert (exp.fn.__doc__ or "").strip(), (
            f"{exp.experiment_id}'s entry point has no docstring"
        )


def _concrete_fault_models():
    import repro.faults.types as types_mod
    from repro.faults.types import FaultModel, NeuronFault, SynapseFault

    abstract = {FaultModel, NeuronFault, SynapseFault}

    def walk(cls):
        for sub in cls.__subclasses__():
            yield from walk(sub)
        if cls not in abstract and cls.__module__ == types_mod.__name__:
            yield cls

    return sorted(set(walk(FaultModel)), key=lambda c: c.__name__)


def test_every_fault_model_is_mask_supported_or_documented_scalar_only():
    """Taxonomy gate: a new FaultModel subclass must either lower onto
    the mask campaign engine (fault_channel_action / synapse_fault_action)
    or be explicitly documented as scalar-only in DESIGN.md."""
    import re

    from repro.faults.injector import fault_channel_action, synapse_fault_action

    design = _read("DESIGN.md")
    models = _concrete_fault_models()
    assert models, "no concrete fault models found in repro.faults.types"
    for cls in models:
        instance = cls()  # every taxonomy model has total defaults
        supported = (
            fault_channel_action(instance) is not None
            or synapse_fault_action(instance) is not None
        )
        # Anchor on taxonomy-table rows ("| `ClassName` | ..."), not bare
        # substrings — CrashFault must not pass via SynapseCrashFault's
        # row, and "scalar-only" must appear on the model's own line.
        table_row = re.search(
            rf"^\|\s*`{cls.__name__}`\s*\|.*$", design, flags=re.M
        )
        if supported:
            assert table_row, (
                f"{cls.__name__} is mask-supported but has no row in "
                "DESIGN.md's fault-taxonomy table"
            )
        else:
            assert table_row and "scalar-only" in table_row.group(0), (
                f"{cls.__name__} has no mask-channel lowering and no "
                "'scalar-only' row in DESIGN.md's fault-taxonomy table"
            )


def test_paper_map_documents_the_fault_taxonomy():
    text = _read("docs/paper_map.md")
    for needle in (
        "SynapseByzantineFault", "IntermittentFault", "Lemma 2 / Theorem 4",
        "MixedFaultSampler",
    ):
        assert needle in text, f"{needle} missing from docs/paper_map.md"
