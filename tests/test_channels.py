"""Unit tests for synapse channels."""

import numpy as np
import pytest

from repro.distributed.channels import SynapseChannel
from repro.distributed.events import ComponentState


class TestCorrectChannel:
    def test_passthrough(self):
        ch = SynapseChannel(0.5, capacity=1.0)
        assert ch.transmit(0.8) == 0.8

    def test_received_term_applies_weight(self):
        ch = SynapseChannel(-0.5, capacity=1.0)
        assert ch.received_term(0.8) == pytest.approx(-0.4)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SynapseChannel(1.0, capacity=-1.0)


class TestCrashedChannel:
    def test_delivers_zero(self):
        ch = SynapseChannel(0.5, capacity=1.0)
        ch.crash()
        assert ch.transmit(0.8) == 0.0
        assert ch.state is ComponentState.CRASHED

    def test_crash_deviation_clipped_under_tiny_capacity(self):
        ch = SynapseChannel(0.5, capacity=0.3)
        ch.crash()
        # Deviation -0.8 clipped to -0.3 -> delivers 0.5.
        assert ch.transmit(0.8) == pytest.approx(0.5)


class TestByzantineChannel:
    def test_offset_applied(self):
        ch = SynapseChannel(1.0, capacity=1.0)
        ch.make_byzantine(offset=0.25)
        assert ch.transmit(0.5) == pytest.approx(0.75)

    def test_offset_clipped_to_capacity(self):
        ch = SynapseChannel(1.0, capacity=0.2)
        ch.make_byzantine(offset=5.0)
        assert ch.transmit(0.5) == pytest.approx(0.7)

    def test_saturating_default(self):
        ch = SynapseChannel(1.0, capacity=0.4)
        ch.make_byzantine(sign=-1)
        assert ch.transmit(0.5) == pytest.approx(0.1)

    def test_saturating_needs_finite_capacity(self):
        ch = SynapseChannel(1.0, capacity=None)
        with pytest.raises(ValueError):
            ch.make_byzantine()

    def test_noise_mode(self):
        ch = SynapseChannel(1.0, capacity=1.0)
        ch.make_byzantine(sigma=0.1, rng=np.random.default_rng(0))
        vals = [ch.transmit(0.5) for _ in range(100)]
        assert np.std(vals) > 0
        assert all(abs(v - 0.5) <= 1.0 + 1e-12 for v in vals)

    def test_sign_validation(self):
        ch = SynapseChannel(1.0)
        with pytest.raises(ValueError):
            ch.make_byzantine(sign=0)


class TestRepair:
    def test_repair_restores_passthrough(self):
        ch = SynapseChannel(1.0, capacity=1.0)
        ch.make_byzantine(offset=0.5)
        ch.repair()
        assert ch.state is ComponentState.CORRECT
        assert ch.transmit(0.3) == 0.3
