"""Unit tests for the Corollary-2 boosting simulation."""

import numpy as np
import pytest

from repro.core.fep import network_fep
from repro.distributed.boosting import (
    BoostingResult,
    LatencyModel,
    boosting_report,
    simulate_boosted_run,
)
from repro.network import build_mlp


@pytest.fixture
def boost_net():
    return build_mlp(
        2,
        [10, 8],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1},
        output_scale=0.05,
        seed=8,
    )


class TestLatencyModel:
    def test_uniform_random_shapes(self, boost_net, rng):
        lat = LatencyModel.uniform_random(boost_net, rng=rng)
        lat.validate(boost_net)
        assert [l.size for l in lat.latencies] == [10, 8]

    def test_straggler_population(self, boost_net, rng):
        lat = LatencyModel.uniform_random(
            boost_net, straggler_fraction=0.2, straggler_scale=100.0, rng=rng
        )
        assert (lat.latencies[0] > 50).sum() == 2

    def test_constant(self, boost_net):
        lat = LatencyModel.constant(boost_net, 2.0)
        assert all(np.all(l == 2.0) for l in lat.latencies)

    def test_validation(self, boost_net):
        bad = LatencyModel([np.ones(3), np.ones(8)])
        with pytest.raises(ValueError):
            bad.validate(boost_net)
        with pytest.raises(ValueError, match="positive"):
            LatencyModel([np.zeros(10), np.ones(8)]).validate(boost_net)


class TestSimulateBoostedRun:
    def test_zero_budget_equals_baseline(self, boost_net, rng):
        lat = LatencyModel.uniform_random(boost_net, rng=rng)
        result = simulate_boosted_run(
            boost_net, rng.random((4, 2)), lat, (0, 0)
        )
        assert result.observed_error == 0.0
        assert result.resets_per_layer == (0, 0)
        assert result.speedup == pytest.approx(1.0)

    def test_error_bounded_by_fep(self, boost_net, rng):
        lat = LatencyModel.uniform_random(
            boost_net, straggler_fraction=0.2, straggler_scale=10, rng=rng
        )
        dist = (2, 1)
        result = simulate_boosted_run(boost_net, rng.random((8, 2)), lat, dist)
        assert result.observed_error <= network_fep(boost_net, dist, mode="crash")
        assert result.resets_per_layer == dist

    def test_speedup_with_stragglers(self, boost_net, rng):
        lat = LatencyModel.uniform_random(
            boost_net, straggler_fraction=0.1, straggler_scale=50.0, rng=rng
        )
        result = simulate_boosted_run(boost_net, rng.random((4, 2)), lat, (1, 1))
        assert result.speedup > 5.0

    def test_no_speedup_with_constant_latency(self, boost_net, rng):
        lat = LatencyModel.constant(boost_net, 1.0)
        result = simulate_boosted_run(boost_net, rng.random((4, 2)), lat, (1, 1))
        assert result.speedup == pytest.approx(1.0)

    def test_resets_are_the_slowest_neurons(self, boost_net, rng):
        lat = LatencyModel.constant(boost_net, 1.0)
        lat.latencies[0][3] = 100.0  # one very slow neuron in layer 1
        result = simulate_boosted_run(boost_net, rng.random((2, 2)), lat, (1, 0))
        # The boosted output differs from baseline exactly by crashing (1,3).
        from repro.faults.injector import FaultInjector
        from repro.faults.scenarios import crash_scenario

        inj = FaultInjector(boost_net, capacity=1.0)
        expected = inj.run(rng.random((0, 2)).reshape(0, 2), crash_scenario([(1, 3)]))
        assert result.resets_per_layer == (1, 0)

    def test_budget_validation(self, boost_net, rng):
        lat = LatencyModel.constant(boost_net)
        with pytest.raises(ValueError):
            simulate_boosted_run(boost_net, rng.random((2, 2)), lat, (10, 0))
        with pytest.raises(ValueError):
            simulate_boosted_run(boost_net, rng.random((2, 2)), lat, (1,))


class TestBoostingReport:
    def test_report_fields(self, boost_net, rng):
        report = boosting_report(
            boost_net, rng.random((8, 2)), (1, 1), 0.5, 0.1, n_trials=5
        )
        assert report["quotas"] == (9, 7)
        assert report["min_speedup"] >= 1.0
        assert report["max_observed_error"] <= report["error_bound"] + 1e-9

    def test_untolerated_budget_rejected(self):
        net = build_mlp(
            2, [6, 5], init={"name": "uniform", "scale": 2.0},
            output_scale=2.0, seed=0,
        )
        with pytest.raises(ValueError, match="not tolerated"):
            boosting_report(net, np.zeros((2, 2)), (3, 3), 0.2, 0.1, n_trials=2)
