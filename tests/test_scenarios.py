"""Unit tests for failure scenarios and their generators."""

import numpy as np
import pytest

from repro.faults.scenarios import (
    NOMINAL,
    FailureScenario,
    all_single_neuron_faults,
    byzantine_scenario,
    crash_scenario,
    exhaustive_crash_scenarios,
    random_failure_scenario,
    random_synapse_scenario,
    uniform_distribution,
    worst_case_byzantine_scenario,
    worst_case_crash_scenario,
)
from repro.faults.types import ByzantineFault, CrashFault, SynapseCrashFault
from repro.network import build_conv_net
from repro.network.model import NeuronAddress


class TestFailureScenario:
    def test_nominal_is_empty(self):
        assert NOMINAL.is_empty()
        assert NOMINAL.num_neuron_faults == 0

    def test_distribution_counting(self):
        sc = crash_scenario([(1, 0), (1, 1), (2, 3)])
        assert sc.neuron_distribution(3) == (2, 1, 0)

    def test_distribution_depth_mismatch(self):
        sc = crash_scenario([(3, 0)])
        with pytest.raises(ValueError):
            sc.neuron_distribution(2)

    def test_synapse_distribution(self):
        sc = FailureScenario(
            synapse_faults={(1, 0, 0): SynapseCrashFault(), (3, 0, 1): SynapseCrashFault()}
        )
        assert sc.synapse_distribution(2) == (1, 0, 1)

    def test_type_validation(self):
        with pytest.raises(TypeError, match="NeuronFault"):
            FailureScenario({(1, 0): SynapseCrashFault()})
        with pytest.raises(TypeError, match="SynapseFault"):
            FailureScenario(synapse_faults={(1, 0, 0): CrashFault()})

    def test_validate_against_network(self, small_net):
        crash_scenario([(2, 5)]).validate(small_net)
        with pytest.raises(ValueError):
            crash_scenario([(2, 6)]).validate(small_net)
        with pytest.raises(ValueError):
            crash_scenario([(3, 0)]).validate(small_net)

    def test_validate_synapse_bounds(self, small_net):
        FailureScenario(
            synapse_faults={(3, 0, 5): SynapseCrashFault()}
        ).validate(small_net)
        with pytest.raises(ValueError):
            FailureScenario(
                synapse_faults={(3, 0, 6): SynapseCrashFault()}
            ).validate(small_net)
        with pytest.raises(ValueError, match="stage"):
            FailureScenario(
                synapse_faults={(4, 0, 0): SynapseCrashFault()}
            ).validate(small_net)

    def test_validate_conv_receptive_field(self):
        net = build_conv_net(8, [3], seed=0)
        FailureScenario(
            synapse_faults={(1, 0, 2): SynapseCrashFault()}
        ).validate(net)
        with pytest.raises(ValueError, match="receptive field"):
            FailureScenario(
                synapse_faults={(1, 0, 7): SynapseCrashFault()}
            ).validate(net)

    def test_merged_with(self):
        a = crash_scenario([(1, 0)], name="a")
        b = byzantine_scenario([(1, 1)], name="b")
        merged = a.merged_with(b)
        assert merged.num_neuron_faults == 2
        assert isinstance(merged.neuron_faults[NeuronAddress(1, 1)], ByzantineFault)

    def test_immutable_mapping_semantics(self):
        sc = crash_scenario([(1, 0)])
        assert NeuronAddress(1, 0) in sc.neuron_faults


class TestGenerators:
    def test_random_counts_match_distribution(self, small_net, rng):
        sc = random_failure_scenario(small_net, (3, 2), rng=rng)
        assert sc.neuron_distribution(2) == (3, 2)

    def test_random_rejects_overfull_layer(self, small_net, rng):
        with pytest.raises(ValueError):
            random_failure_scenario(small_net, (9, 0), rng=rng)

    def test_random_distribution_length_checked(self, small_net, rng):
        with pytest.raises(ValueError):
            random_failure_scenario(small_net, (1,), rng=rng)

    def test_random_no_duplicates(self, small_net, rng):
        sc = random_failure_scenario(small_net, (8 - 1, 0), rng=rng)
        layer1 = [a for a in sc.neuron_faults if a.layer == 1]
        assert len(set(layer1)) == 7

    def test_worst_case_picks_highest_outgoing_weight(self, small_net):
        sc = worst_case_crash_scenario(small_net, (1, 0))
        victim = next(iter(sc.neuron_faults))
        scores = np.abs(small_net.layers[1].dense_weights()).max(axis=0)
        assert victim.index == int(np.argmax(scores))

    def test_worst_case_last_layer_uses_output_weights(self, small_net):
        sc = worst_case_crash_scenario(small_net, (0, 1))
        victim = next(iter(sc.neuron_faults))
        assert victim.index == int(np.argmax(np.abs(small_net.output_weights)))

    def test_worst_case_byzantine_saturates(self, small_net):
        sc = worst_case_byzantine_scenario(small_net, (2, 0), sign=-1)
        for fault in sc.neuron_faults.values():
            assert isinstance(fault, ByzantineFault)
            assert fault.value is None and fault.sign == -1

    def test_uniform_distribution_floors(self, small_net):
        assert uniform_distribution(small_net, 0.25) == (2, 1)
        assert uniform_distribution(small_net, 0.0) == (0, 0)
        with pytest.raises(ValueError):
            uniform_distribution(small_net, 1.5)

    def test_synapse_generator_counts(self, small_net, rng):
        sc = random_synapse_scenario(small_net, (2, 1, 1), rng=rng)
        assert sc.synapse_distribution(2) == (2, 1, 1)
        sc.validate(small_net)

    def test_synapse_generator_respects_conv_mask(self, rng):
        net = build_conv_net(10, [3], seed=0)
        sc = random_synapse_scenario(net, (5, 0), rng=rng)
        sc.validate(net)


class TestEnumerations:
    def test_exhaustive_count(self, single_layer_net):
        scenarios = list(exhaustive_crash_scenarios(single_layer_net, 2))
        assert len(scenarios) == 45  # C(10, 2)

    def test_single_fault_enumeration(self, small_net):
        singles = list(all_single_neuron_faults(small_net))
        assert len(singles) == small_net.num_neurons
        assert all(s.num_neuron_faults == 1 for s in singles)
