"""The message-passing simulator must agree exactly with both the plain
forward pass and the vectorised fault injector — it is the semantic
reference for the whole failure model."""

import numpy as np
import pytest

from repro.distributed.simulator import DistributedNetwork
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (
    FailureScenario,
    byzantine_scenario,
    crash_scenario,
    random_failure_scenario,
    random_synapse_scenario,
)
from repro.faults.types import OffsetFault, StuckAtFault, SynapseByzantineFault
from repro.network import build_conv_net
from repro.network.model import NeuronAddress


class TestStructure:
    def test_process_and_channel_counts(self, small_net):
        sim = DistributedNetwork(small_net, capacity=1.0)
        assert sim.num_processes == small_net.num_neurons
        assert sim.num_channels == small_net.num_synapses

    def test_component_states_accounting(self, small_net):
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(crash_scenario([(1, 0), (2, 1)]))
        states = sim.component_states()
        assert states["crashed"] == 2
        assert states["correct"] == small_net.num_neurons - 2 + small_net.num_synapses


class TestNominalEquivalence:
    def test_matches_forward(self, small_net, rng):
        sim = DistributedNetwork(small_net, capacity=1.0)
        x = rng.random((6, 3))
        np.testing.assert_allclose(
            sim.run_batch(x), small_net.forward(x), atol=1e-12
        )

    def test_conv_network(self, rng):
        net = build_conv_net(10, [3], seed=0)
        sim = DistributedNetwork(net, capacity=1.0)
        x = rng.random((3, 10))
        np.testing.assert_allclose(sim.run_batch(x), net.forward(x), atol=1e-12)

    def test_input_dim_checked(self, small_net):
        sim = DistributedNetwork(small_net, capacity=1.0)
        with pytest.raises(ValueError):
            sim.run(np.zeros(5))


class TestFaultEquivalence:
    """Simulator == injector on identical scenarios (to float precision)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_crash_scenarios(self, small_net, seed):
        rng = np.random.default_rng(seed)
        sc = random_failure_scenario(small_net, (2, 1), rng=rng)
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(sc)
        inj = FaultInjector(small_net, capacity=1.0)
        x = rng.random((5, 3))
        np.testing.assert_allclose(sim.run_batch(x), inj.run(x, sc), atol=1e-12)

    def test_byzantine_sentinel(self, small_net, rng):
        sc = byzantine_scenario([(1, 2), (2, 3)], sign=-1)
        sim = DistributedNetwork(small_net, capacity=0.7)
        sim.apply_scenario(sc)
        inj = FaultInjector(small_net, capacity=0.7)
        x = rng.random((4, 3))
        np.testing.assert_allclose(sim.run_batch(x), inj.run(x, sc), atol=1e-12)

    def test_stuck_and_offset_faults(self, small_net, rng):
        sc = FailureScenario(
            {
                NeuronAddress(1, 0): StuckAtFault(0.9),
                NeuronAddress(2, 2): OffsetFault(offset=0.1),
            }
        )
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(sc)
        inj = FaultInjector(small_net, capacity=1.0)
        x = rng.random((4, 3))
        np.testing.assert_allclose(sim.run_batch(x), inj.run(x, sc), atol=1e-12)

    def test_synapse_faults(self, small_net, rng):
        sc = random_synapse_scenario(small_net, (2, 1, 1), rng=rng)
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(sc)
        inj = FaultInjector(small_net, capacity=1.0)
        x = rng.random((4, 3))
        np.testing.assert_allclose(sim.run_batch(x), inj.run(x, sc), atol=1e-12)

    def test_mixed_neuron_and_synapse(self, small_net, rng):
        sc = FailureScenario(
            {NeuronAddress(1, 1): StuckAtFault(0.0)},
            {(3, 0, 0): SynapseByzantineFault(offset=0.2)},
        )
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(sc)
        inj = FaultInjector(small_net, capacity=1.0)
        x = rng.random((4, 3))
        np.testing.assert_allclose(sim.run_batch(x), inj.run(x, sc), atol=1e-12)

    def test_reset_failures_restores_nominal(self, small_net, rng):
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(crash_scenario([(1, 0), (1, 1)]))
        sim.reset_failures()
        x = rng.random((3, 3))
        np.testing.assert_allclose(sim.run_batch(x), small_net.forward(x), atol=1e-12)


class TestTracing:
    def test_trace_counts_drops_and_corruption(self, small_net, rng):
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.apply_scenario(crash_scenario([(1, 0)]))
        sim.run(rng.random(3), record_trace=True)
        # Round 1 (delivery into layer 2): 1 producer crashed -> 6 drops.
        layer2_trace = sim.traces[1]
        assert layer2_trace.signals_dropped == 6
        assert layer2_trace.signals_delivered == 7 * 6

    def test_trace_empty_without_flag(self, small_net, rng):
        sim = DistributedNetwork(small_net, capacity=1.0)
        sim.run(rng.random(3))
        assert sim.traces == []
