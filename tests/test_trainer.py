"""Unit tests for the training loop."""

import numpy as np
import pytest

from repro.network import build_mlp
from repro.training.data import gaussian_bump, sample_dataset, sup_error
from repro.training.trainer import Trainer, TrainingHistory, train_to_target


class TestTrainer:
    def test_loss_decreases(self, rng):
        net = build_mlp(2, [10], seed=10)
        target = gaussian_bump(2)
        X, y = sample_dataset(target, 256, rng=rng)
        history = Trainer(optimizer="adam").train(
            net, X, y, epochs=30, batch_size=32, rng=rng
        )
        assert history.losses[-1] < history.losses[0]
        assert history.epochs_run == 30

    def test_sup_error_tracked(self, rng):
        net = build_mlp(2, [8], seed=11)
        target = gaussian_bump(2)
        X, y = sample_dataset(target, 128, rng=rng)
        history = Trainer().train(
            net, X, y, epochs=20, rng=rng, target=target, eval_every=5
        )
        assert len(history.sup_errors) == 4

    def test_early_stop_on_target(self, rng):
        net = build_mlp(2, [10], seed=12)
        target = gaussian_bump(2, width=0.3)
        X, y = sample_dataset(target, 256, rng=rng)
        history = Trainer(optimizer="adam").train(
            net, X, y, epochs=500, rng=rng,
            target=target, target_sup_error=0.5, eval_every=2,
        )
        assert history.converged
        assert history.epochs_to_target is not None
        assert history.epochs_run == history.epochs_to_target

    def test_validation(self, rng):
        net = build_mlp(2, [4], seed=13)
        with pytest.raises(ValueError):
            Trainer().train(net, np.zeros((4, 2)), np.zeros((3, 1)))
        with pytest.raises(ValueError):
            Trainer().train(net, np.zeros((4, 2)), np.zeros((4, 1)), epochs=0)

    def test_callback_invoked(self, rng):
        net = build_mlp(2, [4], seed=14)
        seen = []
        Trainer().train(
            net, np.zeros((8, 2)), np.zeros((8, 1)), epochs=3, rng=rng,
            callback=lambda e, l: seen.append(e),
        )
        assert seen == [1, 2, 3]

    def test_history_properties_empty(self):
        h = TrainingHistory()
        assert np.isnan(h.final_loss) and np.isnan(h.final_sup_error)


class TestTrainToTarget:
    def test_produces_reasonable_approximation(self):
        net = build_mlp(2, [16], activation={"name": "sigmoid", "k": 1.0}, seed=15)
        target = gaussian_bump(2, width=0.25)
        history = train_to_target(
            net, target, n_samples=512, epochs=200, seed=0
        )
        err = sup_error(net, target, points_per_dim=15)
        assert err < 0.45  # over-provisioned eps' level for the experiments
        assert history.final_loss < 0.05
