"""Unit tests for the activation family and its Lipschitz metadata."""

import numpy as np
import pytest

from repro.network.activations import (
    HardSigmoid,
    Identity,
    LeakyReLU,
    ReLU,
    Sigmoid,
    SoftSign,
    Tanh,
    available_activations,
    get_activation,
)

ALL_BOUNDED = [Sigmoid(0.25), Sigmoid(2.0), Tanh(0.5), HardSigmoid(1.0), SoftSign()]


class TestSigmoid:
    def test_default_is_quarter_lipschitz(self):
        assert Sigmoid().lipschitz == 0.25

    def test_value_at_zero_is_half(self):
        assert Sigmoid(3.0)(np.array([0.0]))[0] == pytest.approx(0.5)

    def test_limits(self):
        s = Sigmoid(1.0)
        assert s(np.array([50.0]))[0] == pytest.approx(1.0)
        assert s(np.array([-50.0]))[0] == pytest.approx(0.0)

    def test_numerically_stable_at_extremes(self):
        s = Sigmoid(4.0)
        out = s(np.array([-1e6, 1e6]))
        assert np.all(np.isfinite(out))
        assert out[0] == 0.0 and out[1] == 1.0

    @pytest.mark.parametrize("k", [0.25, 0.5, 1.0, 2.0, 8.0])
    def test_tuned_lipschitz_equals_k(self, k):
        s = Sigmoid(k)
        xs = np.linspace(-5, 5, 10001)
        quot = np.abs(np.diff(s(xs)) / np.diff(xs))
        assert quot.max() == pytest.approx(k, rel=1e-3)

    def test_derivative_matches_finite_difference(self):
        s = Sigmoid(1.5)
        xs = np.linspace(-3, 3, 25)
        h = 1e-7
        fd = (s(xs + h) - s(xs - h)) / (2 * h)
        np.testing.assert_allclose(s.derivative(xs), fd, rtol=1e-4, atol=1e-9)

    def test_strictly_increasing(self):
        s = Sigmoid(0.7)
        xs = np.linspace(-4, 4, 100)
        assert np.all(np.diff(s(xs)) > 0)

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            Sigmoid(0.0)
        with pytest.raises(ValueError):
            Sigmoid(-1.0)

    def test_satisfies_universality(self):
        assert Sigmoid(1.0).satisfies_universality


class TestTanh:
    def test_range_is_unit_interval(self):
        t = Tanh(1.0)
        out = t(np.linspace(-30, 30, 101))
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_lipschitz_constant(self):
        t = Tanh(2.0)
        xs = np.linspace(-4, 4, 10001)
        quot = np.abs(np.diff(t(xs)) / np.diff(xs))
        assert quot.max() == pytest.approx(2.0, rel=1e-3)

    def test_derivative_matches_finite_difference(self):
        t = Tanh(0.8)
        xs = np.linspace(-2, 2, 17)
        h = 1e-7
        fd = (t(xs + h) - t(xs - h)) / (2 * h)
        np.testing.assert_allclose(t.derivative(xs), fd, rtol=1e-5)


class TestHardSigmoid:
    def test_exact_linear_region(self):
        h = HardSigmoid(2.0)
        xs = np.linspace(-0.2, 0.2, 41)  # |k x| < 0.5 -> linear
        np.testing.assert_allclose(h(xs), 2.0 * xs + 0.5)

    def test_clipping(self):
        h = HardSigmoid(1.0)
        assert h(np.array([10.0]))[0] == 1.0
        assert h(np.array([-10.0]))[0] == 0.0

    def test_derivative_in_and_out_of_region(self):
        h = HardSigmoid(0.5)
        assert h.derivative(np.array([0.0]))[0] == 0.5
        assert h.derivative(np.array([100.0]))[0] == 0.0


class TestUnboundedActivations:
    def test_relu_output_bound_infinite(self):
        assert ReLU().output_bound == np.inf

    def test_relu_values_and_derivative(self):
        r = ReLU()
        np.testing.assert_allclose(r(np.array([-1.0, 2.0])), [0.0, 2.0])
        np.testing.assert_allclose(r.derivative(np.array([-1.0, 2.0])), [0.0, 1.0])

    def test_leaky_relu(self):
        lr = LeakyReLU(alpha=0.1)
        np.testing.assert_allclose(lr(np.array([-2.0, 3.0])), [-0.2, 3.0])
        with pytest.raises(ValueError):
            LeakyReLU(alpha=2.0)

    def test_identity(self):
        i = Identity()
        xs = np.linspace(-2, 2, 5)
        np.testing.assert_allclose(i(xs), xs)
        np.testing.assert_allclose(i.derivative(xs), 1.0)


class TestBoundedFamily:
    @pytest.mark.parametrize("act", ALL_BOUNDED, ids=lambda a: repr(a))
    def test_output_bound_respected(self, act):
        out = act(np.linspace(-100, 100, 501))
        assert np.all(np.abs(out) <= act.output_bound + 1e-12)

    @pytest.mark.parametrize("act", ALL_BOUNDED, ids=lambda a: repr(a))
    def test_empirical_lipschitz_below_declared(self, act):
        xs = np.linspace(-10, 10, 5001)
        quot = np.abs(np.diff(act(xs)) / np.diff(xs))
        assert quot.max() <= act.lipschitz + 1e-9

    def test_softsign_lipschitz_half(self):
        s = SoftSign()
        assert s.derivative(np.array([0.0]))[0] == pytest.approx(0.5)


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_activation("sigmoid"), Sigmoid)

    def test_get_by_spec_dict(self):
        act = get_activation({"name": "sigmoid", "k": 2.0})
        assert act.lipschitz == 2.0

    def test_passthrough_instance(self):
        act = Tanh(0.3)
        assert get_activation(act) is act

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown activation"):
            get_activation("nope")

    def test_bad_spec_type_raises(self):
        with pytest.raises(TypeError):
            get_activation(42)

    def test_available_lists_builtin(self):
        names = available_activations()
        for expected in ("sigmoid", "tanh", "relu", "identity"):
            assert expected in names

    def test_spec_roundtrip(self):
        act = Sigmoid(1.25)
        again = get_activation(act.spec())
        assert again == act
        assert hash(again) == hash(act)


class TestEvaluateInto:
    """The in-place, dtype-preserving hot path of the campaign engine."""

    @pytest.mark.parametrize(
        "act",
        [
            Sigmoid(k=1.0),
            Tanh(k=0.5),
            HardSigmoid(k=0.25),
            ReLU(),
            SoftSign(),  # exercises the base-class fallback
        ],
    )
    def test_matches_call_and_preserves_dtype(self, act):
        x = np.linspace(-30, 30, 101)
        for dtype in (np.float64, np.float32):
            xd = x.astype(dtype)
            out = np.empty_like(xd)
            result = act.evaluate_into(xd.copy(), out)
            assert result is out and out.dtype == dtype
            np.testing.assert_allclose(out, act(x), rtol=1e-6, atol=1e-7)

    def test_aliasing_input_is_allowed(self):
        act = Sigmoid(k=2.0)
        buf = np.linspace(-3, 3, 17)
        expected = act(buf)
        act.evaluate_into(buf, buf)
        # The tanh formulation agrees to machine *absolute* precision
        # (relative error grows in the deep tails, where values ~1e-11).
        np.testing.assert_allclose(buf, expected, atol=1e-12)

    def test_stable_at_extremes(self):
        act = Sigmoid(k=1.0)
        buf = np.array([-1e4, 1e4])
        act.evaluate_into(buf, buf)
        np.testing.assert_allclose(buf, [0.0, 1.0], atol=1e-12)
