"""Unit tests for loss functions."""

import numpy as np
import pytest

from repro.training.losses import HuberLoss, MAELoss, MSELoss, get_loss


class TestMSE:
    def test_value(self):
        loss = MSELoss()
        assert loss.value(np.array([[1.0], [2.0]]), np.array([[0.0], [0.0]])) == (
            pytest.approx(2.5)
        )

    def test_gradient_matches_fd(self, rng):
        loss = MSELoss()
        pred = rng.random((6, 2))
        target = rng.random((6, 2))
        g = loss.gradient(pred, target)
        h = 1e-6
        for i in range(6):
            for j in range(2):
                bump = pred.copy()
                bump[i, j] += h
                fd = (loss.value(bump, target) - loss.value(pred, target)) / h
                assert g[i, j] == pytest.approx(fd, rel=1e-3, abs=1e-8)

    def test_zero_at_perfect(self):
        x = np.ones((3, 1))
        assert MSELoss().value(x, x) == 0.0

    def test_1d_targets_promoted(self):
        assert MSELoss().value(np.array([1.0, 2.0]), np.array([1.0, 2.0])) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            MSELoss().value(np.zeros((2, 1)), np.zeros((3, 1)))


class TestMAE:
    def test_value(self):
        assert MAELoss().value(np.array([[1.0], [-1.0]]), np.zeros((2, 1))) == 1.0

    def test_gradient_signs(self):
        g = MAELoss().gradient(np.array([[2.0], [-2.0]]), np.zeros((2, 1)))
        np.testing.assert_allclose(g, [[0.5], [-0.5]])


class TestHuber:
    def test_quadratic_regime(self):
        h = HuberLoss(delta=1.0)
        assert h.value(np.array([[0.5]]), np.array([[0.0]])) == pytest.approx(0.125)

    def test_linear_regime(self):
        h = HuberLoss(delta=1.0)
        assert h.value(np.array([[3.0]]), np.array([[0.0]])) == pytest.approx(2.5)

    def test_gradient_capped(self):
        h = HuberLoss(delta=1.0)
        g = h.gradient(np.array([[100.0]]), np.array([[0.0]]))
        assert g[0, 0] == pytest.approx(1.0)

    def test_delta_validation(self):
        with pytest.raises(ValueError):
            HuberLoss(delta=0.0)


class TestRegistry:
    def test_get_by_name(self):
        assert isinstance(get_loss("mse"), MSELoss)
        assert isinstance(get_loss("huber"), HuberLoss)

    def test_passthrough(self):
        loss = MAELoss()
        assert get_loss(loss) is loss

    def test_unknown(self):
        with pytest.raises(KeyError):
            get_loss("hinge")
