"""Smoke + shape tests for the experiment harness.

Each experiment's shape checks are the reproduction criteria; here we
run every experiment at reduced size and assert they all pass, plus
unit-test the result container and table formatter.
"""

import pytest

from repro.experiments import (
    ALL_EXPERIMENTS,
    ExperimentResult,
    format_table,
    run_boosting,
    run_conv,
    run_figure1,
    run_figure2,
    run_figure3,
    run_lemma1,
    run_overprovision,
    run_theorem1,
    run_theorem2,
    run_theorem3,
    run_theorem4,
    run_theorem5,
)


class TestRunner:
    def test_passed_and_failed_checks(self):
        r = ExperimentResult("x", "d", shape_checks={"a": True, "b": False})
        assert not r.passed
        assert r.failed_checks() == ["b"]
        with pytest.raises(AssertionError, match="b"):
            r.assert_passed()

    def test_report_contains_checks_and_rows(self):
        r = ExperimentResult(
            "x", "desc", rows=[{"a": 1.5, "b": "q"}],
            shape_checks={"ok": True}, metrics={"m": 2.0},
            notes=["a note"],
        )
        text = r.report()
        assert "PASS" in text and "a note" in text and "m=2" in text

    def test_format_table_alignment(self):
        table = format_table([{"col": 1}, {"col": 22, "extra": "x"}])
        lines = table.splitlines()
        assert lines[0].startswith("col")
        assert "extra" in lines[0]
        assert len(lines) == 4

    def test_format_empty(self):
        assert format_table([]) == "(no rows)"

    def test_registry_is_complete(self):
        assert len(ALL_EXPERIMENTS) == 23


class TestFigures:
    def test_figure1(self):
        run_figure1().assert_passed()

    def test_figure2(self):
        result = run_figure2()
        result.assert_passed()
        assert len(result.rows) == 5

    def test_figure3_reduced(self):
        result = run_figure3(
            k_grid=(0.5, 1.0, 2.0),
            n_scenarios=20,
            n_inputs=24,
            networks=(0, 2, 4),
        )
        result.assert_passed()
        assert len(result.rows) == 9


class TestTheorems:
    def test_theorem1(self):
        run_theorem1(n_neurons=8, max_fail=3, n_inputs=24).assert_passed()

    def test_theorem2(self):
        run_theorem2(n_networks=6).assert_passed()

    def test_theorem3(self):
        run_theorem3(n_scenarios=80).assert_passed()

    def test_theorem4(self):
        run_theorem4(n_networks=6).assert_passed()

    def test_theorem5(self):
        run_theorem5(bits_grid=(2, 4, 6, 8), n_inputs=64).assert_passed()

    def test_lemma1(self):
        run_lemma1().assert_passed()


class TestApplications:
    def test_overprovision(self):
        run_overprovision(factors=(1, 2, 4)).assert_passed()

    def test_boosting(self):
        run_boosting(n_trials=6).assert_passed()

    def test_conv(self):
        run_conv(n_scenarios=30, n_draws=60).assert_passed()

    def test_reliability(self):
        from repro.experiments import run_reliability

        run_reliability(n_trials=80).assert_passed()

    def test_chaos_survival(self):
        from repro.experiments import run_chaos_survival

        run_chaos_survival(epochs=30, n_replicas=48).assert_passed()

    def test_chaos_rejuvenation(self):
        from repro.experiments import run_chaos_rejuvenation

        run_chaos_rejuvenation(
            epochs=40, n_replicas=32, periods=(5, 10)
        ).assert_passed()

    def test_quantized_probes(self):
        from repro.experiments import run_quantized_probes

        run_quantized_probes(n_scenarios=600).assert_passed()

    def test_adaptive_sampling(self):
        from repro.experiments import run_adaptive_sampling

        run_adaptive_sampling().assert_passed()

    def test_pruning(self):
        from repro.experiments import run_pruning

        run_pruning().assert_passed()

    def test_smr_baseline(self):
        from repro.experiments import run_smr_baseline

        run_smr_baseline(n_scenarios=40).assert_passed()

    @pytest.mark.slow
    def test_fep_learning(self):
        from repro.experiments import run_fep_learning

        run_fep_learning(epochs=50, n_scenarios=50).assert_passed()

    @pytest.mark.slow
    def test_tradeoff_k(self):
        from repro.experiments import run_tradeoff_k

        run_tradeoff_k(k_grid=(0.25, 1.0), epochs=25).assert_passed()

    @pytest.mark.slow
    def test_tradeoff_weights(self):
        from repro.experiments import run_tradeoff_weights

        run_tradeoff_weights(caps=(0.1, 0.8), epochs=25).assert_passed()
