"""Unit tests for the theorem-level bound API."""

import numpy as np
import pytest

from repro.core.bounds import (
    BoundCheck,
    check_theorem1,
    check_theorem3,
    check_theorem4,
    check_theorem5,
    corollary2_required_signals,
    lemma1_unbounded_transmission,
    lemma2_synapse_neuron_equivalence,
    theorem1_max_crashes,
)
from repro.network import build_mlp


class TestBoundCheck:
    def test_truthiness(self):
        ok = BoundCheck(True, 0.1, 0.2, "t")
        bad = BoundCheck(False, 0.3, 0.2, "t")
        assert ok and not bad
        assert ok.margin == pytest.approx(0.1)
        assert bad.margin == pytest.approx(-0.1)

    def test_repr_mentions_verdict(self):
        assert "NOT tolerated" in repr(BoundCheck(False, 1.0, 0.5, "theorem3"))


class TestTheorem1:
    def test_max_crashes_floor(self):
        assert theorem1_max_crashes(0.3, 0.1, 0.05) == 4
        assert theorem1_max_crashes(0.3, 0.1, 0.2) == 1
        assert theorem1_max_crashes(0.3, 0.1, 0.21) == 0

    def test_exact_division_included(self):
        assert theorem1_max_crashes(0.3, 0.1, 0.1) == 2

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            theorem1_max_crashes(0.1, 0.3, 0.05)
        with pytest.raises(ValueError):
            theorem1_max_crashes(0.3, 0.0, 0.05)
        with pytest.raises(ValueError):
            theorem1_max_crashes(0.3, 0.1, 0.0)

    def test_check_on_single_layer(self, single_layer_net):
        w = single_layer_net.weight_max(2)
        n_ok = int(0.2 / w)
        ok = check_theorem1(single_layer_net, n_ok, 0.3, 0.1)
        bad = check_theorem1(single_layer_net, n_ok + 1, 0.3, 0.1)
        assert ok.tolerated and not bad.tolerated

    def test_check_rejects_multilayer(self, small_net):
        with pytest.raises(ValueError, match="single-layer"):
            check_theorem1(small_net, 1, 0.3, 0.1)

    def test_check_rejects_negative(self, single_layer_net):
        with pytest.raises(ValueError):
            check_theorem1(single_layer_net, -1, 0.3, 0.1)


class TestTheorem3:
    def test_zero_failures_always_tolerated(self, small_net):
        assert check_theorem3(small_net, (0, 0), 0.3, 0.1, mode="crash")

    def test_full_layer_never_tolerated(self, small_net):
        check = check_theorem3(small_net, (8, 0), 0.3, 0.1, mode="crash")
        assert not check.tolerated

    def test_monotone_budget(self, small_net):
        dist = (1, 0)
        tight = check_theorem3(small_net, dist, 0.11, 0.1, mode="crash")
        loose = check_theorem3(small_net, dist, 5.0, 0.1, mode="crash")
        assert loose.tolerated
        assert loose.error_bound == pytest.approx(tight.error_bound)

    def test_capacity_scaling(self, small_net):
        a = check_theorem3(small_net, (1, 1), 1.0, 0.5, capacity=1.0,
                           mode="byzantine")
        b = check_theorem3(small_net, (1, 1), 1.0, 0.5, capacity=2.0,
                           mode="byzantine")
        assert b.error_bound == pytest.approx(2 * a.error_bound)

    def test_distribution_length_checked(self, small_net):
        with pytest.raises(ValueError):
            check_theorem3(small_net, (1,), 0.3, 0.1, mode="crash")


class TestTheorem4:
    def test_monotone_in_failures(self, small_net):
        a = check_theorem4(small_net, (1, 0, 0), 1.0, 0.5, capacity=1.0)
        b = check_theorem4(small_net, (2, 0, 0), 1.0, 0.5, capacity=1.0)
        assert b.error_bound == pytest.approx(2 * a.error_bound)

    def test_length_checked(self, small_net):
        with pytest.raises(ValueError):
            check_theorem4(small_net, (1, 0), 1.0, 0.5, capacity=1.0)

    def test_output_stage_cheapest(self, small_net):
        stage1 = check_theorem4(small_net, (1, 0, 0), 1.0, 0.5, capacity=1.0)
        out_stage = check_theorem4(small_net, (0, 0, 1), 1.0, 0.5, capacity=1.0)
        # With K=1 and fan-outs > 1, an early synapse fault can fan out.
        assert out_stage.error_bound <= stage1.error_bound


class TestTheorem5:
    def test_zero_lambdas_tolerated(self, small_net):
        assert check_theorem5(small_net, (0.0, 0.0), 0.3, 0.1)

    def test_scaling_in_lambda(self, small_net):
        a = check_theorem5(small_net, (0.01, 0.01), 1.0, 0.5)
        b = check_theorem5(small_net, (0.02, 0.02), 1.0, 0.5)
        assert b.error_bound == pytest.approx(2 * a.error_bound)


class TestLemmas:
    def test_lemma1_detects_unbounded(self):
        assert lemma1_unbounded_transmission(None)
        assert lemma1_unbounded_transmission(np.inf)
        assert not lemma1_unbounded_transmission(10.0)

    def test_lemma2_value(self):
        assert lemma2_synapse_neuron_equivalence(2.0, 0.5) == 1.0
        with pytest.raises(ValueError):
            lemma2_synapse_neuron_equivalence(-1.0, 0.5)


class TestCorollary2:
    def test_quota_formula(self):
        net = build_mlp(
            2, [10, 8], activation={"name": "sigmoid", "k": 0.5},
            init={"name": "uniform", "scale": 0.05}, output_scale=0.05, seed=0,
        )
        quotas = corollary2_required_signals(net, (2, 1), 0.5, 0.1)
        assert quotas == (8, 7)

    def test_untolerated_distribution_raises(self):
        net = build_mlp(
            2, [10, 8], init={"name": "uniform", "scale": 2.0},
            output_scale=2.0, seed=0,
        )
        with pytest.raises(ValueError, match="not tolerated"):
            corollary2_required_signals(net, (5, 5), 0.2, 0.1)
