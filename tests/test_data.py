"""Unit tests for synthetic targets and dataset utilities."""

import numpy as np
import pytest

from repro.training.data import (
    available_targets,
    gaussian_bump,
    get_target,
    grid_inputs,
    polynomial_bowl,
    radial_wave,
    sample_dataset,
    sine_ridge,
    smooth_xor,
    sup_error,
)


ALL_TARGETS = [
    gaussian_bump(2),
    sine_ridge(3),
    polynomial_bowl(2),
    smooth_xor(),
    radial_wave(2),
]


class TestTargets:
    @pytest.mark.parametrize("target", ALL_TARGETS, ids=lambda t: t.name)
    def test_range_in_unit_interval(self, target, rng):
        x = rng.random((500, target.dim))
        y = target(x)
        assert y.min() >= -1e-12 and y.max() <= 1 + 1e-12

    def test_gaussian_peak_at_centre(self):
        t = gaussian_bump(2, center=0.5)
        assert t(np.array([0.5, 0.5])) == pytest.approx(1.0)

    def test_xor_corners(self):
        t = smooth_xor(steepness=50.0)
        assert t(np.array([0.0, 0.0])) < 0.02
        assert t(np.array([1.0, 1.0])) < 0.02
        assert t(np.array([1.0, 0.0])) > 0.98
        assert t(np.array([0.0, 1.0])) > 0.98

    def test_bowl_extremes(self):
        t = polynomial_bowl(2)
        assert t(np.array([0.5, 0.5])) == pytest.approx(0.0)
        assert t(np.array([0.0, 0.0])) == pytest.approx(1.0)

    def test_dim_checked(self):
        t = gaussian_bump(3)
        with pytest.raises(ValueError):
            t(np.zeros((4, 2)))

    def test_scalar_input(self):
        t = sine_ridge(2)
        assert np.isscalar(float(t(np.array([0.2, 0.3]))))

    def test_registry(self):
        assert "gaussian_bump" in available_targets()
        t = get_target("radial_wave", dim=4)
        assert t.dim == 4
        with pytest.raises(KeyError):
            get_target("unknown")


class TestDatasets:
    def test_shapes(self, rng):
        t = gaussian_bump(3)
        X, y = sample_dataset(t, 100, rng=rng)
        assert X.shape == (100, 3) and y.shape == (100, 1)

    def test_labels_match_target(self, rng):
        t = polynomial_bowl(2)
        X, y = sample_dataset(t, 50, rng=rng)
        np.testing.assert_allclose(y[:, 0], t(X))

    def test_noise_added(self, rng):
        t = polynomial_bowl(2)
        X, y = sample_dataset(t, 2000, rng=rng, noise=0.1)
        residual = y[:, 0] - t(X)
        assert 0.08 < residual.std() < 0.12

    def test_n_validated(self, rng):
        with pytest.raises(ValueError):
            sample_dataset(gaussian_bump(2), 0, rng=rng)


class TestGridAndSupError:
    def test_grid_shape_and_coverage(self):
        g = grid_inputs(2, 5)
        assert g.shape == (25, 2)
        assert g.min() == 0.0 and g.max() == 1.0

    def test_grid_validation(self):
        with pytest.raises(ValueError):
            grid_inputs(0, 5)
        with pytest.raises(ValueError):
            grid_inputs(2, 1)

    def test_sup_error_zero_for_perfect_model(self, small_net):
        class PerfectTarget:
            name, dim = "perfect", 3

            def __call__(self, x):
                return small_net.forward(x)[:, 0]

        t = PerfectTarget()
        assert sup_error(small_net, t, grid_inputs(3, 5)) == 0.0

    def test_sup_error_positive_for_mismatch(self, small_net):
        t = gaussian_bump(3)
        assert sup_error(small_net, t, points_per_dim=5) > 0
