"""Unit tests for precision allocation (the Theorem-5 inverse)."""

import numpy as np
import pytest

from repro.core.fep import network_precision_bound
from repro.quantization.precision import (
    build_quantized_network,
    greedy_bit_allocation,
    layer_error_coefficients,
    memory_savings,
    uniform_bit_allocation,
)


class TestCoefficients:
    def test_linear_reconstruction(self, small_net):
        coeffs = layer_error_coefficients(small_net)
        lambdas = np.array([0.03, 0.07])
        assert float(coeffs @ lambdas) == pytest.approx(
            network_precision_bound(small_net, lambdas)
        )

    def test_positive(self, deep_net):
        assert np.all(layer_error_coefficients(deep_net) > 0)


class TestUniformAllocation:
    def test_meets_budget_and_is_minimal(self, small_net):
        b = uniform_bit_allocation(small_net, 0.05)
        coeffs = layer_error_coefficients(small_net)
        bound_at = lambda bits: float(
            np.sum(coeffs * 2.0 ** -(np.full(2, bits) + 1.0))
        )
        assert bound_at(b) <= 0.05
        if b > 1:
            assert bound_at(b - 1) > 0.05

    def test_budget_validation(self, small_net):
        with pytest.raises(ValueError):
            uniform_bit_allocation(small_net, 0.0)

    def test_unreachable_budget(self, small_net):
        with pytest.raises(ValueError, match="unreachable"):
            uniform_bit_allocation(small_net, 1e-30, max_bits=8)


class TestGreedyAllocation:
    def test_meets_budget(self, deep_net):
        alloc = greedy_bit_allocation(deep_net, 0.02)
        qnet = build_quantized_network(deep_net, alloc)
        assert network_precision_bound(deep_net, qnet.lambdas) <= 0.02 + 1e-12

    def test_no_worse_than_uniform(self, deep_net):
        alloc = greedy_bit_allocation(deep_net, 0.02)
        uniform = uniform_bit_allocation(deep_net, 0.02)
        assert sum(alloc) <= deep_net.depth * uniform

    def test_high_coefficient_layers_get_more_bits(self, deep_net):
        coeffs = layer_error_coefficients(deep_net)
        alloc = greedy_bit_allocation(deep_net, 0.001)
        order_coeff = np.argsort(coeffs)
        order_bits = np.argsort(alloc)
        # The costliest layer never receives the fewest bits (ties aside).
        assert alloc[order_coeff[-1]] >= alloc[order_coeff[0]]

    def test_unreachable_budget(self, small_net):
        with pytest.raises(ValueError, match="unreachable"):
            greedy_bit_allocation(small_net, 1e-30, max_bits=6)


class TestBuildAndSavings:
    def test_scalar_bits_broadcast(self, small_net):
        qnet = build_quantized_network(small_net, 6)
        assert all(q.bits == 6 for q in qnet.quantizers)

    def test_sequence_bits(self, small_net):
        qnet = build_quantized_network(small_net, [4, 8])
        assert [q.bits for q in qnet.quantizers] == [4, 8]
        with pytest.raises(ValueError):
            build_quantized_network(small_net, [4])

    def test_memory_savings_fraction(self, small_net):
        assert memory_savings(small_net, 8) == pytest.approx(1 - 8 / 64)
        assert memory_savings(small_net, 64) == pytest.approx(0.0)
