"""Golden spec fixtures: the CI ``spec-roundtrip`` gate.

``tests/fixtures/specs/*.json`` holds one committed spec per workload
family — every fault-taxonomy kind, every sampler family, both
survival methods, each chaos process/policy/detector combination the
CLI offers, and the exact stored workloads of the spec-declaring
registered experiments.  The gate round-trips every fixture through
``from_dict(to_dict(...))`` and fails on unknown/missing keys,
``spec_version`` mismatches, or any byte-level drift of the
``--dump-spec`` format — i.e. it is the schema-compatibility contract
for stored specs.
"""

import json
from pathlib import Path

import pytest

from repro.specs import (
    FAULT_KINDS,
    SPEC_VERSION,
    CampaignSpec,
    ChaosSpec,
    ServiceSpec,
    SurvivalSpec,
    load_spec,
    spec_from_dict,
)

FIXTURE_DIR = Path(__file__).resolve().parent / "fixtures" / "specs"
FIXTURES = sorted(FIXTURE_DIR.glob("*.json"))


def fixture_ids():
    return [p.stem for p in FIXTURES]


def test_fixture_directory_is_populated():
    assert len(FIXTURES) >= 18, (
        f"expected the golden spec corpus under {FIXTURE_DIR}, found "
        f"{len(FIXTURES)} files"
    )


@pytest.mark.parametrize("path", FIXTURES, ids=fixture_ids())
def test_fixture_round_trips_exactly(path):
    """from_dict(to_dict(...)) is the identity on every golden spec."""
    payload = json.loads(path.read_text(encoding="utf-8"))
    spec = spec_from_dict(payload)
    assert spec.to_dict() == payload, (
        f"{path.name}: to_dict(from_dict(...)) drifted from the stored "
        "payload — unknown/missing keys or changed defaults"
    )
    assert spec_from_dict(spec.to_dict()) == spec


@pytest.mark.parametrize("path", FIXTURES, ids=fixture_ids())
def test_fixture_bytes_match_dump_spec_format(path):
    """The committed file is byte-identical to ``spec.to_json()`` — the
    ``--dump-spec`` output format never silently reformats."""
    spec = load_spec(path)
    assert path.read_text(encoding="utf-8") == spec.to_json()


@pytest.mark.parametrize("path", FIXTURES, ids=fixture_ids())
def test_fixture_is_current_schema_version(path):
    payload = json.loads(path.read_text(encoding="utf-8"))
    assert payload.get("spec_version") == SPEC_VERSION
    # Nested specs carry the version too; a partial bump must fail loud.
    def versions(node):
        if isinstance(node, dict):
            if "spec" in node:
                yield node.get("spec_version")
            for v in node.values():
                yield from versions(v)
        elif isinstance(node, list):
            for v in node:
                yield from versions(v)

    assert set(versions(payload)) == {SPEC_VERSION}


def test_corpus_covers_the_fault_taxonomy():
    """One campaign fixture per fault kind — a new FaultModel kind must
    commit its golden spec."""
    campaign_faults = set()
    for path in FIXTURES:
        spec = load_spec(path)
        if isinstance(spec, CampaignSpec):
            campaign_faults.add(spec.fault.kind)
            if spec.sampler.kind == "mixed":
                for comp in spec.sampler.components:
                    campaign_faults.add(comp.fault.kind)
    assert campaign_faults >= set(FAULT_KINDS), (
        f"fault kinds without a golden campaign fixture: "
        f"{sorted(set(FAULT_KINDS) - campaign_faults)}"
    )


def test_corpus_covers_experiment_and_cli_chaos_combos():
    """Every chaos process/policy/detector kind reachable from the CLI
    (and both registered chaos experiments' stored specs) appears."""
    processes, policies, detectors = set(), set(), set()
    for path in FIXTURES:
        spec = load_spec(path)
        if isinstance(spec, ChaosSpec):
            processes |= {p.kind for p in spec.processes}
            policies.add(spec.policy.kind)
            detectors |= {d.kind for d in spec.detectors}
    assert processes >= {"lifetime", "poisson", "bursts", "blasts"}
    assert policies >= {"none", "rejuvenate", "repair", "spare"}
    assert detectors >= {"threshold", "cusum", "certified"}
    methods = {
        spec.method
        for spec in map(load_spec, FIXTURES)
        if isinstance(spec, SurvivalSpec)
    }
    assert methods == {"certified", "monte_carlo"}


def test_corpus_covers_adaptive_stopping():
    """Both confidence-sequence families and the stratified rare-event
    path keep committed golden specs — the adaptive schema cannot
    drift silently."""
    methods, stratified = set(), False
    for spec in map(load_spec, FIXTURES):
        stopping = getattr(spec, "stopping", None)
        if stopping is None:
            continue
        methods.add(stopping.method)
        stratified = stratified or stopping.stratify
    assert methods == {"hoeffding", "empirical_bernstein"}
    assert stratified, "no golden fixture exercises the stratified path"


def test_corpus_covers_the_service_spec():
    """The serving layer's config is golden too: one committed
    ServiceSpec with the admission-control fields populated."""
    services = [s for s in map(load_spec, FIXTURES)
                if isinstance(s, ServiceSpec)]
    assert services, "no golden ServiceSpec fixture"
    assert any(
        s.socket is not None and s.job_timeout is not None
        for s in services
    )


def test_experiment_fixtures_match_declared_specs():
    """The committed experiment fixtures ARE the registry's stored
    workloads: replaying the fixture replays the experiment."""
    from repro.experiments import registry

    for exp_id, fixture in (
        ("chaos_survival", "chaos_survival_experiment.json"),
        ("chaos_rejuvenation", "chaos_rejuvenation_experiment.json"),
        ("incident_replay", "incident_replay_experiment.json"),
        ("quantized_probes", "quantized_probes_experiment.json"),
        ("adaptive_sampling", "adaptive_sampling_experiment.json"),
    ):
        stored = load_spec(FIXTURE_DIR / fixture)
        declared = registry.get(exp_id).spec
        assert stored == declared, (
            f"{fixture} drifted from {exp_id}'s declared spec — "
            "regenerate the fixture"
        )
        assert stored.content_hash() == declared.content_hash()
