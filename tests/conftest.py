"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.network import build_mlp


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_net():
    """A 2-layer dense net with bounded uniform weights (w_m <= 0.5)."""
    return build_mlp(
        3,
        [8, 6],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.5},
        output_scale=0.5,
        seed=0,
    )


@pytest.fixture
def deep_net():
    """A 3-layer net for depth-dependent checks."""
    return build_mlp(
        2,
        [6, 5, 4],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.4},
        output_scale=0.4,
        seed=1,
    )


@pytest.fixture
def single_layer_net():
    """A 1-layer net for Theorem-1 level tests."""
    return build_mlp(
        2,
        [10],
        activation={"name": "sigmoid", "k": 1.0},
        init={"name": "uniform", "scale": 0.6},
        output_scale=0.4,
        seed=2,
    )


@pytest.fixture
def batch(rng, small_net):
    return rng.random((32, small_net.input_dim))
