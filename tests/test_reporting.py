"""Unit tests for the Markdown reporting layer."""

import pytest

from repro.analysis.reporting import (
    result_to_markdown,
    results_to_markdown,
    write_markdown_report,
)
from repro.experiments.runner import ExperimentResult


@pytest.fixture
def sample_result():
    return ExperimentResult(
        "figureX",
        "a demo experiment",
        rows=[{"K": 0.5, "Er": 0.123456789}, {"K": 1.0, "Er": 0.5, "extra": "x|y"}],
        shape_checks={"good": True, "bad": False},
        metrics={"slope": 1.5},
        notes=["a caveat"],
    )


class TestResultToMarkdown:
    def test_section_structure(self, sample_result):
        md = result_to_markdown(sample_result)
        assert md.startswith("## `figureX`")
        assert "| K | Er |" in md
        assert "✅ good" in md and "❌ bad" in md
        assert "`slope` = 1.5" in md
        assert "> a caveat" in md

    def test_pipe_escaped_in_cells(self, sample_result):
        assert "x\\|y" in result_to_markdown(sample_result)

    def test_empty_rows(self):
        r = ExperimentResult("e", "d", shape_checks={"ok": True})
        assert "*(no rows)*" in result_to_markdown(r)

    def test_float_formatting(self, sample_result):
        assert "0.123457" in result_to_markdown(sample_result)


class TestResultsToMarkdown:
    def test_summary_line(self, sample_result):
        ok = ExperimentResult("ok", "d", shape_checks={"a": True})
        md = results_to_markdown({"a": sample_result, "b": ok})
        assert "1/2 experiments pass" in md
        assert "## `figureX`" in md and "## `ok`" in md

    def test_accepts_iterable(self, sample_result):
        md = results_to_markdown([sample_result])
        assert "0/1 experiments pass" in md

    def test_custom_title(self, sample_result):
        md = results_to_markdown([sample_result], title="My Report")
        assert md.startswith("# My Report")


class TestWriteReport:
    def test_writes_file(self, tmp_path, sample_result):
        path = write_markdown_report([sample_result], tmp_path / "report.md")
        text = path.read_text(encoding="utf-8")
        assert "figureX" in text

    def test_cli_markdown_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "rep.md"
        assert main(["experiments", "figure2", "--markdown", str(out)]) == 0
        assert out.exists()
        assert "figure2" in out.read_text(encoding="utf-8")
