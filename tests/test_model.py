"""Unit tests for FeedForwardNetwork (model structure + forward)."""

import numpy as np
import pytest

from repro.network.layers import DenseLayer
from repro.network.model import FeedForwardNetwork, NeuronAddress
from repro.network import build_mlp


class TestConstruction:
    def test_fan_mismatch_rejected(self):
        layers = [DenseLayer(2, 3), DenseLayer(4, 2)]
        with pytest.raises(ValueError, match="fan mismatch"):
            FeedForwardNetwork(layers, np.zeros((1, 2)))

    def test_output_weight_shape_checked(self):
        with pytest.raises(ValueError, match="output weights"):
            FeedForwardNetwork([DenseLayer(2, 3)], np.zeros((1, 4)))

    def test_needs_at_least_one_layer(self):
        with pytest.raises(ValueError):
            FeedForwardNetwork([], np.zeros((1, 1)))

    def test_1d_output_weights_promoted(self):
        net = FeedForwardNetwork([DenseLayer(2, 3)], np.zeros(3))
        assert net.output_weights.shape == (1, 3)
        assert net.n_outputs == 1


class TestStructure:
    def test_sizes(self, small_net):
        assert small_net.depth == 2
        assert small_net.input_dim == 3
        assert small_net.layer_sizes == (8, 6)
        assert small_net.num_neurons == 14
        assert small_net.num_synapses == 3 * 8 + 8 * 6 + 6

    def test_weight_maxes_length_and_bound(self, small_net):
        wm = small_net.weight_maxes()
        assert len(wm) == small_net.depth + 1
        assert all(0 < w <= 0.5 for w in wm)

    def test_weight_max_bad_index(self, small_net):
        with pytest.raises(ValueError):
            small_net.weight_max(0)
        with pytest.raises(ValueError):
            small_net.weight_max(4)

    def test_lipschitz_is_max_over_layers(self):
        net = build_mlp(2, [3], activation={"name": "sigmoid", "k": 2.0}, seed=0)
        assert net.lipschitz_constant == 2.0
        assert net.lipschitz_constants() == (2.0,)

    def test_output_bound_sigmoid(self, small_net):
        assert small_net.output_bound == 1.0


class TestAddressing:
    def test_flat_roundtrip(self, small_net):
        for addr in small_net.iter_addresses():
            assert small_net.address_of(small_net.flat_index(addr)) == addr

    def test_flat_count(self, small_net):
        assert len(list(small_net.iter_addresses())) == small_net.num_neurons

    def test_check_address_rejects_output_layer(self, small_net):
        with pytest.raises(ValueError, match="client"):
            small_net.check_address((3, 0))

    def test_check_address_rejects_wide_index(self, small_net):
        with pytest.raises(ValueError):
            small_net.check_address((1, 8))

    def test_address_class_invariants(self):
        with pytest.raises(ValueError):
            NeuronAddress(0, 1)
        with pytest.raises(ValueError):
            NeuronAddress(1, -1)
        a = NeuronAddress(2, 3)
        assert a.layer == 2 and a.index == 3 and tuple(a) == (2, 3)

    def test_address_of_out_of_range(self, small_net):
        with pytest.raises(ValueError):
            small_net.address_of(small_net.num_neurons)


class TestForward:
    def test_output_shape_batch(self, small_net, batch):
        assert small_net.forward(batch).shape == (32, 1)

    def test_output_shape_single(self, small_net):
        out = small_net.forward(np.zeros(3))
        assert out.shape == (1,)

    def test_rejects_wrong_dim(self, small_net):
        with pytest.raises(ValueError, match="input dimension"):
            small_net.forward(np.zeros((4, 5)))
        with pytest.raises(ValueError, match="1-D or 2-D"):
            small_net.forward(np.zeros((2, 2, 3)))

    def test_hidden_outputs_shapes(self, small_net, batch):
        taps = small_net.hidden_outputs(batch)
        assert [t.shape for t in taps] == [(32, 8), (32, 6)]

    def test_forward_from_consistency(self, small_net, batch):
        taps = small_net.hidden_outputs(batch)
        full = small_net.forward(batch)
        np.testing.assert_allclose(small_net.forward_from(1, taps[0]), full)
        np.testing.assert_allclose(small_net.forward_from(2, taps[1]), full)

    def test_forward_from_bad_layer(self, small_net, batch):
        with pytest.raises(ValueError):
            small_net.forward_from(0, batch)

    def test_deterministic(self, small_net, batch):
        np.testing.assert_array_equal(
            small_net.forward(batch), small_net.forward(batch)
        )

    def test_callable_alias(self, small_net, batch):
        np.testing.assert_array_equal(small_net(batch), small_net.forward(batch))


class TestMutation:
    def test_scale_weights_scales_w_m(self, small_net):
        before = np.asarray(small_net.weight_maxes())
        small_net.scale_weights(0.5)
        after = np.asarray(small_net.weight_maxes())
        np.testing.assert_allclose(after, before * 0.5)

    def test_copy_independent(self, small_net, batch):
        clone = small_net.copy()
        clone.scale_weights(0.0)
        assert np.abs(small_net.forward(batch)).max() > 0
        np.testing.assert_allclose(
            clone.forward(batch), np.zeros((batch.shape[0], 1))
        )

    def test_parameters_keys(self, small_net):
        keys = set(small_net.parameters())
        assert "layer1.weights" in keys and "output.weights" in keys

    def test_summary_mentions_topology(self, small_net):
        text = small_net.summary()
        assert "L=2" in text and "N=(8, 6)" in text
