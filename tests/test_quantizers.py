"""Unit tests for quantisers and the quantised network wrapper."""

import numpy as np
import pytest

from repro.core.fep import network_precision_bound
from repro.quantization.quantizers import (
    FixedPointQuantizer,
    HalfPrecisionQuantizer,
    QuantizedNetwork,
    StochasticRoundingQuantizer,
    UniformQuantizer,
)


class TestFixedPointQuantizer:
    def test_max_error_formula(self):
        q = FixedPointQuantizer(bits=4)
        assert q.max_error == 2.0**-5
        assert q.bits == 4

    def test_error_bound_holds_on_unit_interval(self, rng):
        q = FixedPointQuantizer(bits=5)
        x = rng.random(10000)
        err = np.abs(q(x) - x)
        assert err.max() <= q.max_error + 1e-15

    def test_idempotent(self, rng):
        q = FixedPointQuantizer(bits=3)
        x = rng.random(100)
        np.testing.assert_array_equal(q(q(x)), q(x))

    def test_grid_values(self):
        q = FixedPointQuantizer(bits=2)
        np.testing.assert_allclose(
            q(np.array([0.0, 0.1, 0.3, 0.6, 1.0])), [0.0, 0.0, 0.25, 0.5, 1.0]
        )

    def test_clips_to_unit_interval(self):
        q = FixedPointQuantizer(bits=2)
        assert q(np.array([1.4]))[0] == 1.0

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            FixedPointQuantizer(0)


class TestUniformQuantizer:
    def test_levels_and_step(self):
        q = UniformQuantizer(levels=5, lo=0.0, hi=1.0)
        assert q.step == pytest.approx(0.25)
        assert q.max_error == pytest.approx(0.125)

    def test_arbitrary_range(self, rng):
        q = UniformQuantizer(levels=9, lo=-2.0, hi=2.0)
        x = rng.uniform(-2, 2, 1000)
        assert np.abs(q(x) - x).max() <= q.max_error + 1e-15

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformQuantizer(levels=1)
        with pytest.raises(ValueError):
            UniformQuantizer(levels=4, lo=1.0, hi=0.0)


class TestStochasticRounding:
    def test_unbiased_in_expectation(self):
        q = StochasticRoundingQuantizer(bits=3, rng=np.random.default_rng(0))
        x = np.full(40000, 0.3)
        assert abs(q(x).mean() - 0.3) < 1e-3

    def test_worst_case_error_one_step(self, rng):
        q = StochasticRoundingQuantizer(bits=4, rng=rng)
        x = rng.random(5000)
        assert np.abs(q(x) - x).max() <= q.max_error + 1e-15

    def test_outputs_on_grid(self):
        q = StochasticRoundingQuantizer(bits=2, rng=np.random.default_rng(1))
        out = q(np.random.default_rng(2).random(100))
        np.testing.assert_allclose(out * 4, np.round(out * 4), atol=1e-12)


class TestHalfPrecisionQuantizer:
    def test_declared_error_bound_holds_on_unit_interval(self, rng):
        q = HalfPrecisionQuantizer()
        assert q.max_error == 2.0**-12 and q.bits == 16
        x = rng.random(20000)
        assert np.abs(q(x) - x).max() <= q.max_error + 1e-15

    def test_idempotent(self, rng):
        q = HalfPrecisionQuantizer()
        x = rng.random(500)
        np.testing.assert_array_equal(q(q(x)), q(x))

    def test_exact_on_binary16_values(self):
        q = HalfPrecisionQuantizer()
        exact = np.array([0.0, 0.25, 0.5, 0.75, 1.0])
        np.testing.assert_array_equal(q(exact), exact)

    def test_returns_float64(self, rng):
        assert HalfPrecisionQuantizer()(rng.random(8)).dtype == np.float64


class TestQuantizedNetwork:
    def test_lambdas_reported(self, small_net):
        qnet = QuantizedNetwork(
            small_net, [FixedPointQuantizer(4), FixedPointQuantizer(8)]
        )
        assert qnet.lambdas == (2.0**-5, 2.0**-9)

    def test_none_slots_are_exact(self, small_net, batch):
        qnet = QuantizedNetwork(small_net, [None, None])
        np.testing.assert_array_equal(qnet.forward(batch), small_net.forward(batch))
        assert qnet.lambdas == (0.0, 0.0)
        assert qnet.output_error(batch) == 0.0

    def test_output_error_within_theorem5(self, small_net, batch):
        qnet = QuantizedNetwork(
            small_net, [FixedPointQuantizer(3), FixedPointQuantizer(3)]
        )
        bound = network_precision_bound(small_net, qnet.lambdas)
        assert qnet.output_error(batch) <= bound + 1e-12

    def test_slot_count_validated(self, small_net):
        with pytest.raises(ValueError):
            QuantizedNetwork(small_net, [FixedPointQuantizer(4)])

    def test_memory_accounting(self, small_net):
        qnet = QuantizedNetwork(
            small_net, [FixedPointQuantizer(4), None]
        )
        assert qnet.memory_bits(64) == 8 * 4 + 6 * 64
