"""Unit tests for the bound-inversion solvers."""

import numpy as np
import pytest

from repro.core.bounds import check_theorem3
from repro.core.fep import network_fep
from repro.core.tolerance import (
    greedy_max_total_failures,
    max_capacity_for_distribution,
    max_failures_single_layer,
    max_uniform_fraction,
    max_weight_scale_for_distribution,
    tolerated_distributions,
)
from repro.network import build_mlp


@pytest.fixture
def tolerant_net():
    """Small weights + shallow K -> lots of tolerance to play with."""
    return build_mlp(
        2,
        [8, 6],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.08},
        output_scale=0.05,
        seed=4,
    )


class TestSingleLayer:
    def test_result_is_tolerated_and_maximal(self, tolerant_net):
        for layer in (1, 2):
            f = max_failures_single_layer(tolerant_net, layer, 0.5, 0.1)
            dist = [0, 0]
            dist[layer - 1] = f
            assert check_theorem3(tolerant_net, dist, 0.5, 0.1, mode="crash")
            if f < tolerant_net.layer_sizes[layer - 1] - 1:
                dist[layer - 1] = f + 1
                assert not check_theorem3(tolerant_net, dist, 0.5, 0.1, mode="crash")

    def test_capped_at_width_minus_one(self, tolerant_net):
        f = max_failures_single_layer(tolerant_net, 2, 100.0, 0.1)
        assert f == tolerant_net.layer_sizes[1] - 1

    def test_layer_bounds_checked(self, tolerant_net):
        with pytest.raises(ValueError):
            max_failures_single_layer(tolerant_net, 0, 0.5, 0.1)
        with pytest.raises(ValueError):
            max_failures_single_layer(tolerant_net, 3, 0.5, 0.1)


class TestUniformFraction:
    def test_fraction_is_tolerated(self, tolerant_net):
        p = max_uniform_fraction(tolerant_net, 0.5, 0.1)
        dist = [int(np.floor(p * n)) for n in tolerant_net.layer_sizes]
        assert check_theorem3(tolerant_net, dist, 0.5, 0.1, mode="crash")

    def test_zero_budget_allows_no_actual_failures(self):
        net = build_mlp(
            2, [8], init={"name": "uniform", "scale": 2.0}, output_scale=2.0, seed=0
        )
        p = max_uniform_fraction(net, 0.1000001, 0.1)
        # The fraction may be positive but must floor to zero failed neurons.
        assert int(np.floor(p * 8)) == 0

    def test_huge_budget_allows_almost_everything(self, tolerant_net):
        assert max_uniform_fraction(tolerant_net, 1000.0, 0.1) >= 0.8


class TestGreedy:
    def test_result_is_tolerated(self, tolerant_net):
        dist = greedy_max_total_failures(tolerant_net, 0.5, 0.1)
        assert check_theorem3(tolerant_net, dist, 0.5, 0.1, mode="crash")

    def test_result_is_maximal(self, tolerant_net):
        dist = list(greedy_max_total_failures(tolerant_net, 0.5, 0.1))
        for l0 in range(len(dist)):
            if dist[l0] + 1 >= tolerant_net.layer_sizes[l0]:
                continue
            bigger = dist.copy()
            bigger[l0] += 1
            assert not check_theorem3(tolerant_net, bigger, 0.5, 0.1, mode="crash")

    def test_respects_fl_strictly_below_nl(self, tolerant_net):
        dist = greedy_max_total_failures(tolerant_net, 1e9, 0.1)
        assert all(f <= n - 1 for f, n in zip(dist, tolerant_net.layer_sizes))


class TestExactFrontier:
    def test_frontier_members_tolerated_and_maximal(self):
        net = build_mlp(
            2, [5, 4], activation={"name": "sigmoid", "k": 0.5},
            init={"name": "uniform", "scale": 0.1}, output_scale=0.1, seed=0,
        )
        frontier = tolerated_distributions(net, 0.4, 0.1)
        assert frontier, "frontier should be non-empty"
        for dist in frontier:
            assert check_theorem3(net, dist, 0.4, 0.1, mode="crash")
        # Greedy result is dominated by (or equals) some frontier point.
        greedy = greedy_max_total_failures(net, 0.4, 0.1)
        assert any(
            all(g <= f for g, f in zip(greedy, front)) for front in frontier
        )

    def test_grid_size_guard(self, small_net):
        with pytest.raises(ValueError, match="grid"):
            tolerated_distributions(small_net, 0.4, 0.1, max_grid=10)


class TestCriticalParameters:
    def test_capacity_threshold_is_critical(self, tolerant_net):
        dist = (1, 1)
        c_star = max_capacity_for_distribution(tolerant_net, dist, 0.5, 0.1)
        assert check_theorem3(
            tolerant_net, dist, 0.5, 0.1, capacity=c_star * 0.999, mode="byzantine"
        )
        assert not check_theorem3(
            tolerant_net, dist, 0.5, 0.1, capacity=c_star * 1.001, mode="byzantine"
        )

    def test_capacity_infinite_for_empty_distribution(self, tolerant_net):
        assert max_capacity_for_distribution(tolerant_net, (0, 0), 0.5, 0.1) == (
            float("inf")
        )

    def test_weight_scale_threshold_is_critical(self, tolerant_net):
        dist = (1, 1)
        s_star = max_weight_scale_for_distribution(tolerant_net, dist, 0.5, 0.1)
        assert s_star > 0
        w = np.asarray(tolerant_net.weight_maxes())
        from repro.core.fep import forward_error_propagation

        below = forward_error_propagation(
            dist, tolerant_net.layer_sizes, w * (s_star * 0.999),
            tolerant_net.lipschitz_constant, 1.0,
        )
        above = forward_error_propagation(
            dist, tolerant_net.layer_sizes, w * (s_star * 1.001),
            tolerant_net.lipschitz_constant, 1.0,
        )
        assert below <= 0.4 + 1e-9 < above

    def test_weight_scale_monotone_in_budget(self, tolerant_net):
        tight = max_weight_scale_for_distribution(tolerant_net, (1, 1), 0.2, 0.1)
        loose = max_weight_scale_for_distribution(tolerant_net, (1, 1), 0.8, 0.1)
        assert loose > tight
