"""Unit tests for robustness certification and empirical audit."""

import numpy as np
import pytest

from repro.core.certification import certify, empirical_audit


@pytest.fixture
def cert_net():
    from repro.network import build_mlp

    return build_mlp(
        2,
        [10, 8],
        activation={"name": "sigmoid", "k": 0.5},
        init={"name": "uniform", "scale": 0.1},
        output_scale=0.08,
        seed=6,
    )


class TestCertify:
    def test_certificate_fields(self, cert_net):
        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        assert cert.layer_sizes == (10, 8)
        assert cert.budget == pytest.approx(0.4)
        assert len(cert.per_layer_max) == 2
        assert 0 <= cert.uniform_fraction <= 1

    def test_maximal_distribution_is_tolerated(self, cert_net):
        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        assert cert.tolerates(cert.maximal_distribution)

    def test_byzantine_mode_requires_capacity(self, cert_net):
        with pytest.raises(ValueError):
            certify(cert_net, 0.5, 0.1, mode="byzantine")
        cert = certify(cert_net, 0.5, 0.1, mode="byzantine", capacity=1.0)
        assert cert.capacity == 1.0

    def test_fep_accessor_matches(self, cert_net):
        from repro.core.fep import network_fep

        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        assert cert.fep((1, 1)) == pytest.approx(
            network_fep(cert_net, (1, 1), mode="crash")
        )

    def test_summary_text(self, cert_net):
        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        text = cert.summary()
        assert "per-layer max failures" in text and "budget=0.4" in text


class TestEmpiricalAudit:
    def test_crash_audit_sound(self, cert_net, rng):
        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        x = rng.random((48, 2))
        report = empirical_audit(cert, x, n_scenarios=100, seed=0)
        assert report.sound
        assert report.worst_observed <= cert.budget + 1e-9
        assert 0 <= report.tightness <= 1 + 1e-9

    def test_byzantine_audit_sound(self, cert_net, rng):
        cert = certify(cert_net, 0.5, 0.1, mode="byzantine", capacity=1.0)
        x = rng.random((48, 2))
        report = empirical_audit(cert, x, n_scenarios=100, seed=0)
        assert report.sound

    def test_explicit_distribution(self, cert_net, rng):
        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        x = rng.random((16, 2))
        report = empirical_audit(
            cert, x, distribution=(1, 0), n_scenarios=20, seed=0
        )
        assert report.distribution == (1, 0)

    def test_zero_distribution_trivially_sound(self, cert_net, rng):
        cert = certify(cert_net, 0.5, 0.1, mode="crash")
        x = rng.random((8, 2))
        report = empirical_audit(
            cert, x, distribution=(0, 0), n_scenarios=5, seed=0
        )
        assert report.sound and report.worst_observed == 0.0
