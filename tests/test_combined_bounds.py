"""Tests for the combined neuron+synapse bound and the synapse-stage
tolerance inversion."""

import numpy as np
import pytest

from repro.core.fep import (
    combined_fep,
    network_combined_fep,
    network_fep,
    network_synapse_fep,
)
from repro.core.tolerance import max_synapse_failures_single_stage
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (
    random_failure_scenario,
    random_synapse_scenario,
)
from repro.faults.types import ByzantineFault
from repro.network import build_mlp


class TestCombinedFep:
    def test_reduces_to_neuron_fep_without_synapses(self, small_net):
        a = network_combined_fep(
            small_net, (2, 1), (0, 0, 0), capacity=1.0
        )
        b = network_fep(small_net, (2, 1), capacity=1.0)
        assert a == pytest.approx(b)

    def test_reduces_to_synapse_fep_without_neurons(self, small_net):
        a = network_combined_fep(
            small_net, (0, 0), (1, 1, 1), capacity=1.0
        )
        b = network_synapse_fep(small_net, (1, 1, 1), capacity=1.0)
        assert a == pytest.approx(b)

    def test_additive_upper_structure(self, small_net):
        both = network_combined_fep(small_net, (2, 1), (1, 0, 1), capacity=1.0)
        neurons = network_fep(small_net, (2, 1), capacity=1.0)
        synapses = network_synapse_fep(small_net, (1, 0, 1), capacity=1.0)
        # Neuron-failure discounts can only shrink the synapse part.
        assert neurons < both <= neurons + synapses + 1e-12

    def test_length_validation(self, small_net):
        with pytest.raises(ValueError):
            combined_fep((1,), (0, 0, 0), small_net.layer_sizes,
                         small_net.weight_maxes(), 1.0, 1.0)
        with pytest.raises(ValueError):
            combined_fep((1, 1), (0, 0), small_net.layer_sizes,
                         small_net.weight_maxes(), 1.0, 1.0)

    def test_dominates_mixed_injection(self, small_net, batch, rng):
        neuron_dist = (2, 1)
        synapse_dist = (1, 1, 1)
        injector = FaultInjector(small_net, capacity=1.0)
        bound = network_combined_fep(
            small_net, neuron_dist, synapse_dist, capacity=1.0
        )
        worst = 0.0
        for trial in range(25):
            sc = random_failure_scenario(
                small_net, neuron_dist, fault=ByzantineFault(), rng=rng
            ).merged_with(
                random_synapse_scenario(small_net, synapse_dist, rng=rng)
            )
            worst = max(worst, injector.output_error(batch, sc))
        assert worst <= bound + 1e-9


class TestSynapseStageTolerance:
    @pytest.fixture
    def tolerant_net(self):
        return build_mlp(
            2, [8, 6], activation={"name": "sigmoid", "k": 0.5},
            init={"name": "uniform", "scale": 0.08}, output_scale=0.05, seed=4,
        )

    def test_result_is_critical(self, tolerant_net):
        from repro.core.bounds import check_theorem4

        for stage in (1, 2, 3):
            f = max_synapse_failures_single_stage(
                tolerant_net, stage, 0.5, 0.1, capacity=1.0
            )
            dist = [0, 0, 0]
            dist[stage - 1] = f
            assert check_theorem4(tolerant_net, dist, 0.5, 0.1, capacity=1.0)
            stage_size = (
                tolerant_net.layers[stage - 1].num_synapses
                if stage <= 2
                else 6
            )
            if f < stage_size:
                dist[stage - 1] = f + 1
                assert not check_theorem4(
                    tolerant_net, dist, 0.5, 0.1, capacity=1.0
                )

    def test_capped_at_stage_size(self, tolerant_net):
        f = max_synapse_failures_single_stage(
            tolerant_net, 3, 1000.0, 0.1, capacity=1.0
        )
        assert f == 6  # output stage has N_L x 1 synapses

    def test_stage_validation(self, tolerant_net):
        with pytest.raises(ValueError):
            max_synapse_failures_single_stage(
                tolerant_net, 0, 0.5, 0.1, capacity=1.0
            )
        with pytest.raises(ValueError):
            max_synapse_failures_single_stage(
                tolerant_net, 4, 0.5, 0.1, capacity=1.0
            )

    def test_deeper_stages_tolerate_more_when_k_small(self, tolerant_net):
        # With K = 0.5 < 1, early-stage errors are amplified less by
        # squashing... actually damped; the output stage has no fanout.
        f1 = max_synapse_failures_single_stage(
            tolerant_net, 1, 0.5, 0.1, capacity=1.0
        )
        f3 = max_synapse_failures_single_stage(
            tolerant_net, 3, 0.5, 0.1, capacity=1.0
        )
        assert f1 >= 0 and f3 >= 0  # both well-defined; relation is net-specific
