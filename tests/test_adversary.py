"""Unit tests for the adversarial worst-case search."""

import numpy as np
import pytest

from repro.faults.adversary import (
    adversarial_byzantine_scenario,
    adversarial_crash_scenario,
    output_sensitivities,
    worst_input_search,
)
from repro.faults.campaign import monte_carlo_campaign, run_campaign
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import crash_scenario


class TestSensitivities:
    def test_shapes(self, small_net, batch):
        sens = output_sensitivities(small_net, batch)
        assert [s.shape for s in sens] == [(32, 8), (32, 6)]

    def test_last_layer_equals_output_weights(self, small_net, batch):
        sens = output_sensitivities(small_net, batch)
        np.testing.assert_allclose(
            sens[-1], np.abs(np.broadcast_to(small_net.output_weights[0], (32, 6)))
        )

    def test_matches_finite_difference(self, small_net):
        x = np.full((1, 3), 0.4)
        sens = output_sensitivities(small_net, x)
        # Perturb one layer-1 neuron's emission and compare.
        taps = small_net.hidden_outputs(x)
        h = 1e-6
        for i in range(3):
            bumped = taps[0].copy()
            bumped[:, i] += h
            fd = (
                small_net.forward_from(1, bumped) - small_net.forward_from(1, taps[0])
            ) / h
            assert abs(abs(fd[0, 0]) - sens[0][0, i]) < 1e-4


class TestAdversarialScenarios:
    def test_distribution_respected(self, small_net, batch):
        sc = adversarial_byzantine_scenario(small_net, (2, 1), batch)
        assert sc.neuron_distribution(2) == (2, 1)
        sc2 = adversarial_crash_scenario(small_net, (1, 2), batch)
        assert sc2.neuron_distribution(2) == (1, 2)

    def test_adversarial_crash_beats_random_average(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        dist = (2, 1)
        mc = monte_carlo_campaign(inj, batch, dist, n_scenarios=60, seed=0)
        adv = adversarial_crash_scenario(small_net, dist, batch)
        adv_err = run_campaign(inj, batch, [adv]).max_error
        assert adv_err >= mc.mean_error

    def test_adversarial_byzantine_beats_random_average(self, small_net, batch):
        from repro.faults.types import ByzantineFault

        inj = FaultInjector(small_net, capacity=1.0)
        dist = (2, 1)
        mc = monte_carlo_campaign(
            inj, batch, dist, n_scenarios=60, seed=0, fault=ByzantineFault()
        )
        adv = adversarial_byzantine_scenario(small_net, dist, batch, capacity=1.0)
        adv_err = run_campaign(inj, batch, [adv]).max_error
        assert adv_err >= mc.mean_error

    def test_length_validation(self, small_net, batch):
        with pytest.raises(ValueError):
            adversarial_byzantine_scenario(small_net, (1,), batch)
        with pytest.raises(ValueError):
            adversarial_crash_scenario(small_net, (1, 1, 1), batch)


class TestWorstInputSearch:
    def test_improves_on_random_sampling(self, small_net, rng):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = crash_scenario([(1, 0), (1, 1), (2, 0)])
        x_star, best = worst_input_search(
            inj, sc, n_candidates=64, refine_steps=10, rng=rng
        )
        random_x = rng.random((64, 3))
        random_best = float(
            np.abs(small_net.forward(random_x) - inj.run(random_x, sc)).max()
        )
        assert best >= random_best - 1e-9

    def test_returns_point_in_cube(self, small_net, rng):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = crash_scenario([(1, 0)])
        x_star, best = worst_input_search(
            inj, sc, n_candidates=16, refine_steps=5, rng=rng
        )
        assert x_star.shape == (3,)
        assert np.all(x_star >= 0) and np.all(x_star <= 1)
        assert best >= 0
