"""Unit tests for the vectorised fault injector."""

import numpy as np
import pytest

from repro.faults.injector import FaultInjector
from repro.faults.scenarios import (
    NOMINAL,
    FailureScenario,
    byzantine_scenario,
    crash_scenario,
    random_failure_scenario,
)
from repro.faults.types import (
    ByzantineFault,
    CrashFault,
    NoiseFault,
    OffsetFault,
    SignFlipFault,
    StuckAtFault,
    SynapseByzantineFault,
    SynapseCrashFault,
)
from repro.network.model import NeuronAddress


class TestNominal:
    def test_empty_scenario_equals_forward(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        np.testing.assert_allclose(
            inj.run(batch, NOMINAL), small_net.forward(batch)
        )

    def test_capacity_validation(self, small_net):
        with pytest.raises(ValueError):
            FaultInjector(small_net, capacity=0.0)
        FaultInjector(small_net, capacity=None)  # unbounded is allowed


class TestCrashSemantics:
    def test_crashed_neuron_reads_zero_downstream(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = crash_scenario([(1, 3)])
        _, taps = inj.run(batch, sc, return_taps=True)
        assert np.all(taps[0][:, 3] == 0.0)

    def test_crash_in_last_layer_removes_contribution(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = crash_scenario([(2, 0)])
        faulty = inj.run(batch, sc)
        taps = small_net.hidden_outputs(batch)
        expected = small_net.forward(batch) - (
            small_net.output_weights[:, 0] * taps[1][:, [0]]
        )
        np.testing.assert_allclose(faulty, expected)

    def test_crash_all_but_one_still_runs(self, single_layer_net, rng):
        inj = FaultInjector(single_layer_net, capacity=1.0)
        sc = crash_scenario([(1, i) for i in range(9)])
        out = inj.run(rng.random((4, 2)), sc)
        assert np.isfinite(out).all()


class TestByzantineSemantics:
    def test_sentinel_deviates_by_capacity(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=0.7)
        sc = byzantine_scenario([(1, 2)], sign=1)
        _, taps = inj.run(batch, sc, return_taps=True)
        nominal_taps = small_net.hidden_outputs(batch)
        np.testing.assert_allclose(taps[0][:, 2], nominal_taps[0][:, 2] + 0.7)

    def test_explicit_value_within_band(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=5.0)
        sc = byzantine_scenario([(1, 0)], value=2.0)
        _, taps = inj.run(batch, sc, return_taps=True)
        np.testing.assert_allclose(taps[0][:, 0], 2.0)

    def test_unbounded_rejects_sentinel(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=None)
        with pytest.raises(ValueError, match="unbounded"):
            inj.run(batch, byzantine_scenario([(1, 0)]))

    def test_unbounded_passes_huge_value(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=None)
        sc = byzantine_scenario([(2, 0)], value=1e6)
        err = inj.output_error(batch, sc)
        assert err > 1e3  # the last layer feeds the linear output node


class TestSynapseSemantics:
    def test_crash_synapse_removes_one_term(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario(synapse_faults={(3, 0, 2): SynapseCrashFault()})
        faulty = inj.run(batch, sc)
        taps = small_net.hidden_outputs(batch)
        expected = small_net.forward(batch).copy()
        expected[:, 0] -= small_net.output_weights[0, 2] * taps[1][:, 2]
        np.testing.assert_allclose(faulty, expected)

    def test_byzantine_synapse_offset_weighted(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario(
            synapse_faults={(3, 0, 1): SynapseByzantineFault(offset=0.5)}
        )
        faulty = inj.run(batch, sc)
        expected = small_net.forward(batch).copy()
        expected[:, 0] += small_net.output_weights[0, 1] * 0.5
        np.testing.assert_allclose(faulty, expected)

    def test_synapse_deviation_clipped_to_capacity(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=0.2)
        sc = FailureScenario(
            synapse_faults={(3, 0, 1): SynapseByzantineFault(offset=100.0)}
        )
        faulty = inj.run(batch, sc)
        expected = small_net.forward(batch).copy()
        expected[:, 0] += small_net.output_weights[0, 1] * 0.2
        np.testing.assert_allclose(faulty, expected)

    def test_hidden_stage_synapse_fault(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario(
            synapse_faults={(2, 1, 0): SynapseByzantineFault(offset=0.3)}
        )
        faulty = inj.run(batch, sc)
        assert np.abs(faulty - small_net.forward(batch)).max() > 0


class TestDynamicFaults:
    def test_noise_fault_reproducible_with_rng(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario({NeuronAddress(1, 0): NoiseFault(sigma=0.1)})
        a = inj.run(batch, sc, rng=np.random.default_rng(5))
        b = inj.run(batch, sc, rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a, b)

    def test_sign_flip(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=10.0)
        sc = FailureScenario({NeuronAddress(1, 4): SignFlipFault()})
        _, taps = inj.run(batch, sc, return_taps=True)
        nominal = small_net.hidden_outputs(batch)
        np.testing.assert_allclose(taps[0][:, 4], -nominal[0][:, 4])


class TestBatchedPath:
    def _scenarios(self, net, rng, n=20):
        return [
            random_failure_scenario(net, (2, 1), rng=rng, name=f"s{i}")
            for i in range(n)
        ]

    def test_run_many_agrees_with_scalar(self, small_net, batch, rng):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = self._scenarios(small_net, rng)
        outs = inj.run_many(batch, scenarios)
        for i, sc in enumerate(scenarios):
            np.testing.assert_allclose(outs[i], inj.run(batch, sc), atol=1e-12)

    def test_run_many_mixed_fault_kinds(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = [
            FailureScenario(
                {
                    NeuronAddress(1, 0): CrashFault(),
                    NeuronAddress(1, 1): ByzantineFault(sign=-1),
                    NeuronAddress(2, 0): StuckAtFault(0.9),
                    NeuronAddress(2, 1): OffsetFault(offset=0.05),
                }
            )
        ]
        outs = inj.run_many(batch, scenarios)
        np.testing.assert_allclose(outs[0], inj.run(batch, scenarios[0]), atol=1e-12)

    def test_errors_many_matches_output_error(self, small_net, batch, rng):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = self._scenarios(small_net, rng, n=8)
        errs = inj.output_errors_many(batch, scenarios)
        for e, sc in zip(errs, scenarios):
            assert e == pytest.approx(inj.output_error(batch, sc))

    def test_compile_lowers_synapse_faults(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario(synapse_faults={(1, 0, 0): SynapseCrashFault()})
        compiled = inj.compile_batch([sc])
        assert compiled.has_synapse_faults
        err = inj.output_errors_many(batch, compiled)
        assert err[0] == pytest.approx(inj.output_error(batch, sc))

    def test_compile_lowers_dynamic_faults(self, small_net):
        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario({NeuronAddress(1, 0): NoiseFault()})
        compiled = inj.compile_batch([sc])
        assert compiled.is_stochastic
        assert compiled.noise_masks[0][0, 0]

    def test_compile_rejects_unknown_fault_models(self, small_net):
        from repro.faults.types import NeuronFault

        class WeirdFault(NeuronFault):
            def apply(self, nominal, *, rng=None, capacity=None):
                return nominal * 0.5  # pragma: no cover

        inj = FaultInjector(small_net, capacity=1.0)
        sc = FailureScenario({NeuronAddress(1, 0): WeirdFault()})
        with pytest.raises(ValueError, match="lowering"):
            inj.compile_batch([sc])

    def test_empty_batch(self, small_net, batch):
        inj = FaultInjector(small_net, capacity=1.0)
        out = inj.run_many(batch, [])
        assert out.shape == (0, 32, 1)

    def test_run_many_on_conv_network(self, rng):
        from repro.network import build_conv_net

        net = build_conv_net(12, [3, 2], seed=5)
        inj = FaultInjector(net, capacity=1.0)
        x = rng.random((6, 12))
        scenarios = [
            random_failure_scenario(net, (1, 1), rng=rng, name=f"c{i}")
            for i in range(6)
        ]
        outs = inj.run_many(x, scenarios)
        for i, sc in enumerate(scenarios):
            np.testing.assert_allclose(outs[i], inj.run(x, sc), atol=1e-12)

    def test_reduction_modes(self, small_net, batch, rng):
        inj = FaultInjector(small_net, capacity=1.0)
        scenarios = self._scenarios(small_net, rng, n=4)
        mx = inj.output_errors_many(batch, scenarios, reduction="max")
        mean = inj.output_errors_many(batch, scenarios, reduction="mean")
        assert np.all(mean <= mx + 1e-12)
        with pytest.raises(ValueError):
            inj.output_errors_many(batch, scenarios, reduction="median")
