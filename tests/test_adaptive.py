"""Statistical-guarantee tests for the adaptive-sampling layer.

Three kinds of promise are audited here:

* **bitwise** — adaptive runs are exact prefixes of fixed-size runs,
  identical between serial and parallel paths, invariant to the worker
  count, and ``stopping=None`` reproduces the pre-adaptive dispatch
  output bit for bit;
* **distributional** — the stopped confidence sequence covers the
  brute-force ground-truth violation rate at its nominal frequency
  (the ``slow_stats`` tier: hundreds of seeded replications judged by
  a binomial test), and the stratified estimator is unbiased against
  the exhaustive oracle;
* **structural** — tighter CI targets never use fewer scenarios,
  certified shells are exactly the Theorem-3 ones, CLI guards reject
  out-of-range widths.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from scipy import stats as sps

from repro.analysis.stats import coverage_pvalue
from repro.faults.adaptive import (
    AdaptiveReport,
    adaptive_campaign_errors,
    certified_zero_shells,
    confidence_sequence_interval,
    hoeffding_fixed_n,
    stratified_violation_estimate,
)
from repro.faults.injector import FaultInjector
from repro.faults.masks import (
    BernoulliSampler,
    MaskCampaignEngine,
    TotalCountShellSampler,
    exhaustive_crash_errors,
    sampled_campaign_errors,
)
from repro.faults.reliability import monte_carlo_survival
from repro.faults.types import NoiseFault
from repro.network import build_mlp

FIXTURES = Path(__file__).parent / "fixtures" / "specs"


@pytest.fixture(scope="module")
def net():
    # 7 neurons total: the exhaustive oracle over all C(7, k)
    # configurations is trivial, so ground-truth violation rates are
    # exact numbers, not estimates.
    return build_mlp(
        2,
        [4, 3],
        activation={"name": "sigmoid", "k": 0.6},
        init={"name": "uniform", "scale": 0.35},
        output_scale=0.3,
        seed=11,
    )


@pytest.fixture(scope="module")
def injector(net):
    return FaultInjector(net)


@pytest.fixture(scope="module")
def x(net):
    return np.random.default_rng(5).random((4, net.input_dim))


@pytest.fixture(scope="module")
def oracle(injector, x, net):
    """Exact violation-rate oracle under i.i.d. crash failures.

    Conditioned on ``k`` total faults the failed set is uniform, so
    ``P[error > t] = sum_k Binom(N, p).pmf(k) * mean_k(errors > t)``
    with ``errors_k`` from the exhaustive sweep — an exact number.
    """
    total = sum(net.layer_sizes)
    shell_errors = [
        exhaustive_crash_errors(injector, x, k) for k in range(total + 1)
    ]

    def rate(p_fail, threshold):
        pmf = sps.binom.pmf(np.arange(total + 1), total, p_fail)
        return float(
            sum(
                w * np.mean(errs > threshold)
                for w, errs in zip(pmf, shell_errors)
            )
        )

    return rate


P_FAIL = 0.3


@pytest.fixture(scope="module")
def threshold(injector, x):
    # A mid-tail level so the true rate is neither ~0 nor ~1.
    errs = exhaustive_crash_errors(injector, x, 2)
    return float(np.quantile(errs, 0.7))


class TestConfidenceSequence:
    def test_interval_contains_phat_and_shrinks(self):
        widths = []
        for n in (100, 1000, 10_000):
            lo, hi = confidence_sequence_interval(
                "hoeffding", n, n // 10, 1, 0.05
            )
            assert lo <= 0.1 <= hi
            widths.append(hi - lo)
        assert widths[0] > widths[1] > widths[2]

    def test_bernstein_tighter_at_low_variance(self):
        # 1% violations, n=5000: the variance-adaptive bound wins.
        h = confidence_sequence_interval("hoeffding", 5000, 50, 3, 0.05)
        b = confidence_sequence_interval(
            "empirical_bernstein", 5000, 50, 3, 0.05
        )
        assert (b[1] - b[0]) < (h[1] - h[0])

    def test_later_looks_spend_less_delta(self):
        first = confidence_sequence_interval("hoeffding", 1000, 100, 1, 0.05)
        tenth = confidence_sequence_interval("hoeffding", 1000, 100, 10, 0.05)
        assert (tenth[1] - tenth[0]) > (first[1] - first[0])

    def test_clipped_to_unit_interval(self):
        lo, hi = confidence_sequence_interval("hoeffding", 10, 0, 1, 0.05)
        assert lo == 0.0 and hi <= 1.0

    def test_bad_method_rejected(self):
        with pytest.raises(ValueError, match="method"):
            confidence_sequence_interval("wilson", 10, 1, 1, 0.05)

    def test_fixed_n_reference(self):
        n = hoeffding_fixed_n(0.02, 0.05)
        # n = ln(2/delta) / (2 (w/2)^2); the half-width at that n meets
        # the target.
        assert np.sqrt(np.log(2 / 0.05) / (2 * n)) <= 0.01 + 1e-12
        with pytest.raises(ValueError):
            hoeffding_fixed_n(1.5, 0.05)
        with pytest.raises(ValueError):
            hoeffding_fixed_n(0.05, 0.0)


class TestAdaptiveRunner:
    def test_prefix_of_fixed_run_bitwise(self, injector, x, net, threshold):
        sampler = BernoulliSampler(net, P_FAIL)
        errs, rep = adaptive_campaign_errors(
            injector, x, sampler, 50_000,
            threshold=threshold, target_ci=0.08, delta=0.05,
            min_scenarios=1024, seed=42,
        )
        assert rep.stopped and rep.n_scenarios < 50_000
        fixed = sampled_campaign_errors(
            injector, x, sampler, rep.n_scenarios, seed=42
        )
        np.testing.assert_array_equal(errs, fixed)

    def test_serial_equals_parallel_and_worker_invariant(
        self, injector, x, net, threshold
    ):
        sampler = BernoulliSampler(net, P_FAIL)
        kwargs = dict(
            threshold=threshold, target_ci=0.08, delta=0.05,
            min_scenarios=1024, seed=42,
        )
        serial, rep0 = adaptive_campaign_errors(
            injector, x, sampler, 50_000, **kwargs
        )
        for workers in (2, 3):
            par, rep = adaptive_campaign_errors(
                injector, x, sampler, 50_000, n_workers=workers, **kwargs
            )
            np.testing.assert_array_equal(serial, par)
            assert rep == rep0

    def test_stochastic_fault_parallel_determinism(self, injector, x, net):
        # Noise faults draw inside evaluate(): the per-block RNG layout
        # must make even these bitwise worker-invariant.
        sampler = BernoulliSampler(net, P_FAIL, fault=NoiseFault(sigma=0.3))
        kwargs = dict(
            threshold=0.05, method="empirical_bernstein", target_ci=0.1,
            delta=0.05, min_scenarios=1024, seed=9,
        )
        serial, rep0 = adaptive_campaign_errors(
            injector, x, sampler, 20_000, **kwargs
        )
        par, rep = adaptive_campaign_errors(
            injector, x, sampler, 20_000, n_workers=2, **kwargs
        )
        np.testing.assert_array_equal(serial, par)
        assert rep == rep0

    def test_tighter_target_never_fewer_scenarios(
        self, injector, x, net, threshold
    ):
        sampler = BernoulliSampler(net, P_FAIL)
        engine = MaskCampaignEngine(injector, x)
        ns = []
        for target in (0.3, 0.15, 0.08, 0.04):
            _, rep = adaptive_campaign_errors(
                injector, x, sampler, 100_000,
                threshold=threshold, target_ci=target, delta=0.1,
                min_scenarios=256, seed=7, engine=engine,
            )
            ns.append(rep.n_scenarios)
        assert ns == sorted(ns)

    def test_cap_and_floor_respected(self, injector, x, net, threshold):
        sampler = BernoulliSampler(net, P_FAIL)
        # Cap below what the target needs: runs to the cap, not stopped.
        _, rep = adaptive_campaign_errors(
            injector, x, sampler, 2048,
            threshold=threshold, target_ci=0.001, delta=0.05, seed=1,
        )
        assert not rep.stopped and rep.n_scenarios == 2048
        # A floor above the first natural stop delays stopping past it.
        _, rep = adaptive_campaign_errors(
            injector, x, sampler, 50_000,
            threshold=threshold, target_ci=0.3, delta=0.05,
            min_scenarios=3000, seed=1,
        )
        assert rep.n_scenarios >= 3000

    def test_validation(self, injector, x, net, threshold):
        sampler = BernoulliSampler(net, P_FAIL)
        for bad in (
            dict(target_ci=0.0),
            dict(target_ci=1.0),
            dict(delta=0.0),
            dict(delta=1.0),
            dict(method="wilson"),
            dict(min_scenarios=0),
        ):
            with pytest.raises(ValueError):
                adaptive_campaign_errors(
                    injector, x, sampler, 1000, threshold=threshold, **bad
                )


@pytest.mark.slow_stats
class TestCoverageGuarantee:
    """The headline promise: over many seeded replications, the stopped
    CI contains the exact ground-truth rate at >= 1 - delta frequency
    (binomial-test tolerance, one-sided: over-coverage is sound)."""

    N_SEEDS = 100  # per method; 200 spawned seeds total
    DELTA = 0.1

    def _coverage(self, injector, x, net, threshold, oracle, method):
        p_true = oracle(P_FAIL, threshold)
        assert 0.02 < p_true < 0.9  # the workload actually discriminates
        sampler = BernoulliSampler(net, P_FAIL)
        engine = MaskCampaignEngine(injector, x, chunk_size=1024)
        seeds = np.random.SeedSequence(2024).spawn(2 * self.N_SEEDS)
        offset = 0 if method == "hoeffding" else self.N_SEEDS
        covered = 0
        for ss in seeds[offset : offset + self.N_SEEDS]:
            _, rep = adaptive_campaign_errors(
                injector, x, sampler, 32_768,
                threshold=threshold, method=method, target_ci=0.12,
                delta=self.DELTA, min_scenarios=256, seed=ss, engine=engine,
            )
            assert rep.stopped
            covered += rep.ci_low <= p_true <= rep.ci_high
        return covered

    @pytest.mark.parametrize("method", ["hoeffding", "empirical_bernstein"])
    def test_stopped_ci_covers_truth(
        self, injector, x, net, threshold, oracle, method
    ):
        covered = self._coverage(injector, x, net, threshold, oracle, method)
        # H0: true coverage >= 1 - delta.  Reject (fail) only if the
        # observed count is significantly below that promise.
        assert coverage_pvalue(covered, self.N_SEEDS, 1 - self.DELTA) > 0.01


class TestShellSampler:
    def test_exact_count_everywhere(self, net):
        for count in (0, 1, 3, 7):
            sampler = TotalCountShellSampler(net, count)
            batch = sampler.sample(64, np.random.default_rng(count))
            totals = sum(m.sum(axis=1) for m in batch.zero_masks)
            assert np.all(totals == count)

    def test_count_out_of_range(self, net):
        with pytest.raises(ValueError):
            TotalCountShellSampler(net, 8)
        with pytest.raises(ValueError):
            TotalCountShellSampler(net, -1)


class TestCertifiedShells:
    def test_generous_budget_certifies_below_smallest_layer(self, net):
        # Any shell reaching a full layer (f_l = N_l) contains an
        # untolerated vector; with layer sizes (4, 3) that's k >= 3.
        cz = certified_zero_shells(net, 1e9, mode="crash")
        assert list(np.nonzero(cz)[0]) == [0, 1, 2]

    def test_zero_budget_certifies_only_empty_shell(self, net):
        cz = certified_zero_shells(net, 0.0, mode="crash")
        assert list(np.nonzero(cz)[0]) == [0]

    def test_oversized_grid_certifies_nothing(self, net):
        assert not certified_zero_shells(net, 1e9, max_grid=2).any()


class TestStratifiedEstimator:
    def test_proportional_unbiased_against_oracle(
        self, injector, x, net, threshold, oracle
    ):
        p_true = oracle(P_FAIL, threshold)
        engine = MaskCampaignEngine(injector, x)
        estimates, variances = [], []
        for seed in range(30):
            rep = stratified_violation_estimate(
                injector, x, P_FAIL, 1024,
                threshold=threshold, allocation="proportional",
                seed=seed, engine=engine,
            )
            estimates.append(rep.estimate)
            variances.append(rep.variance)
        mean = np.mean(estimates)
        se = np.sqrt(np.mean(variances) / len(estimates))
        assert abs(mean - p_true) < 4.5 * se

    @pytest.mark.parametrize("allocation", ["neyman", "rare"])
    def test_rigorous_ci_covers_truth(
        self, injector, x, net, threshold, oracle, allocation
    ):
        p_true = oracle(P_FAIL, threshold)
        rep = stratified_violation_estimate(
            injector, x, P_FAIL, 4096,
            threshold=threshold, allocation=allocation, seed=3,
        )
        assert rep.ci_low <= p_true <= rep.ci_high
        assert rep.n_scenarios == 4096

    def test_certified_pruning_spends_nothing_on_safe_shells(
        self, injector, x, net
    ):
        # A generous budget certifies every shell below the smallest
        # layer (the Fep certificate, not the empirical maximum); the
        # sampled shells must exclude them and their mass be credited.
        big = 1e9
        rep = stratified_violation_estimate(
            injector, x, P_FAIL, 512,
            threshold=big, allocation="rare", seed=0, prune_mode="crash",
        )
        assert set(rep.certified_shells) == {0, 1, 2}
        assert all(k >= 3 for k in rep.shells)
        pmf = sps.binom.pmf(np.arange(3), 7, P_FAIL)
        assert rep.certified_mass == pytest.approx(float(pmf.sum()))

    def test_weights_recombine_to_one(self, injector, x, net, threshold):
        rep = stratified_violation_estimate(
            injector, x, P_FAIL, 512, threshold=threshold, seed=0,
        )
        assert sum(rep.weights) + rep.certified_mass + rep.skipped_mass == (
            pytest.approx(1.0)
        )

    def test_validation(self, injector, x, net, threshold):
        for bad in (
            dict(allocation="optimal"),
            dict(pilot=1),
            dict(delta=0.0),
            dict(n_scenarios=0),
        ):
            kwargs = dict(threshold=threshold, seed=0)
            kwargs.update(bad)
            n = kwargs.pop("n_scenarios", 512)
            with pytest.raises(ValueError):
                stratified_violation_estimate(
                    injector, x, P_FAIL, n, **kwargs
                )


class TestSurvivalStopping:
    def test_adaptive_survival_matches_fixed_estimate(self, net, x):
        plain = monte_carlo_survival(
            net, 0.2, 0.08, 0.02, x, n_trials=4096, seed=5
        )
        adaptive = monte_carlo_survival(
            net, 0.2, 0.08, 0.02, x, n_trials=100_000, seed=5,
            stopping=type(
                "S", (), {
                    "method": "empirical_bernstein", "target_ci": 0.1,
                    "delta": 0.05, "threshold": None,
                    "min_scenarios": 1024, "stratify": False,
                },
            )(),
        )
        assert adaptive.adaptive is not None
        assert adaptive.adaptive.stopped
        assert adaptive.n_trials < 100_000
        # Two consistent estimators of the same survival probability.
        assert adaptive.ci_low - 0.05 <= plain.survival <= (
            adaptive.ci_high + 0.05
        )
        assert plain.adaptive is None


class TestBitwiseRegression:
    """``stopping=None`` must reproduce the pre-adaptive outputs
    exactly, and old spec payloads must neither carry nor gain a
    ``stopping`` key."""

    def test_dispatch_without_stopping_is_the_plain_campaign(
        self, net, tmp_path
    ):
        from repro import specs
        from repro.network.serialization import save_network

        path = tmp_path / "net.npz"
        save_network(net, str(path))
        spec = specs.CampaignSpec(
            network=specs.NetworkRef(path=str(path)),
            sampler=specs.SamplerSpec(kind="bernoulli", p_fail=P_FAIL),
            n_scenarios=2048,
            batch=4,
            seed=12,
        )
        result = specs.run(spec)
        assert result.adaptive is None
        # The exact pre-adaptive lowering, replayed by hand.
        resolved = spec.network.resolve()
        injector = FaultInjector(
            resolved, capacity=resolved.output_bound
        )
        rng = np.random.default_rng(spec.seed)
        probe = rng.random((spec.batch, resolved.input_dim))
        expected = sampled_campaign_errors(
            injector, probe,
            BernoulliSampler(resolved, P_FAIL),
            spec.n_scenarios, seed=spec.seed,
        )
        np.testing.assert_array_equal(result.errors, expected)

    def test_adaptive_errors_are_a_prefix_of_the_plain_run(
        self, net, tmp_path
    ):
        from repro import specs
        from repro.network.serialization import save_network

        path = tmp_path / "net.npz"
        save_network(net, str(path))
        base = specs.CampaignSpec(
            network=specs.NetworkRef(path=str(path)),
            sampler=specs.SamplerSpec(kind="bernoulli", p_fail=P_FAIL),
            n_scenarios=50_000,
            threshold=0.02,
            batch=4,
            seed=12,
        )
        adaptive = specs.run(
            base.replace(
                stopping=specs.StoppingSpec(target_ci=0.1, delta=0.1)
            )
        )
        assert adaptive.adaptive is not None and adaptive.adaptive.stopped
        full = specs.run(base.replace(n_scenarios=adaptive.num_scenarios))
        np.testing.assert_array_equal(adaptive.errors, full.errors)

    def test_golden_fixtures_stay_free_of_stopping(self):
        new = {
            "campaign_adaptive_hoeffding.json",
            "survival_adaptive_bernstein.json",
            "campaign_stratified_byzantine.json",
            "adaptive_sampling_experiment.json",
        }
        old = [
            p
            for p in sorted(FIXTURES.glob("*.json"))
            if p.name not in new
        ]
        assert old, "golden fixtures should exist"
        for path in old:
            payload = json.loads(path.read_text())
            assert "stopping" not in payload, path.name
            sampler = payload.get("sampler")
            if isinstance(sampler, dict):
                assert "stopping" not in sampler, path.name

    def test_old_payload_loads_as_stopping_none_and_round_trips(self):
        from repro import specs

        for path in sorted(FIXTURES.glob("campaign_*.json")):
            payload = json.loads(path.read_text())
            spec = specs.spec_from_dict(payload)
            if "stopping" not in payload:
                assert spec.stopping is None
                assert "stopping" not in spec.to_dict()


class TestCLIGuards:
    def test_unit_open_interval_type(self):
        import argparse

        from repro.cli import _unit_float, _unit_open_float

        assert _unit_open_float("0.5") == 0.5
        for bad in ("0", "1", "-0.2", "1.5", "abc"):
            with pytest.raises(argparse.ArgumentTypeError):
                _unit_open_float(bad)
        assert _unit_float("0") == 0.0 and _unit_float("1") == 1.0
        with pytest.raises(argparse.ArgumentTypeError):
            _unit_float("1.01")
