"""Unit tests for the neuron process state machine."""

import numpy as np
import pytest

from repro.distributed.events import ComponentState, Signal
from repro.distributed.neuron import NeuronProcess
from repro.faults.types import ByzantineFault, OffsetFault
from repro.network.activations import Identity, Sigmoid


def make_neuron(weights=(0.5, -0.5), bias=0.0, activation=None):
    return NeuronProcess(
        2, 0, np.array(weights), bias, activation or Identity()
    )


class TestMessageHandling:
    def test_receive_and_sum(self):
        n = make_neuron()
        n.receive(Signal(layer=1, src=0, value=1.0, round=0))
        n.receive(Signal(layer=1, src=1, value=0.5, round=0))
        assert n.compute_sum() == pytest.approx(0.5 - 0.25)
        assert n.inbox_size == 2 and n.missing_sources() == []

    def test_missing_signals_read_zero(self):
        n = make_neuron()
        n.receive(Signal(layer=1, src=0, value=1.0, round=0))
        assert n.compute_sum() == pytest.approx(0.5)
        assert n.missing_sources() == [1]

    def test_wrong_layer_rejected(self):
        n = make_neuron()
        with pytest.raises(ValueError, match="expected 1"):
            n.receive(Signal(layer=0, src=0, value=1.0, round=0))

    def test_out_of_range_source_rejected(self):
        n = make_neuron()
        with pytest.raises(ValueError):
            n.receive(Signal(layer=1, src=5, value=1.0, round=0))

    def test_reset_round_clears_state(self):
        n = make_neuron()
        n.receive(Signal(layer=1, src=0, value=1.0, round=0))
        n.fire()
        n.reset_round()
        assert n.inbox_size == 0 and n.fired_value is None

    def test_bias_enters_sum(self):
        n = make_neuron(bias=0.3)
        assert n.compute_sum() == pytest.approx(0.3)


class TestFiring:
    def test_correct_neuron_applies_activation(self):
        n = make_neuron(activation=Sigmoid(1.0))
        assert n.fire() == pytest.approx(0.5)  # sigmoid(0)

    def test_crashed_neuron_emits_none(self):
        n = make_neuron()
        n.crash()
        assert n.fire() is None
        assert n.state is ComponentState.CRASHED

    def test_byzantine_deviation_bounded(self):
        n = make_neuron(activation=Sigmoid(1.0))
        n.set_fault(ByzantineFault(value=100.0), capacity=0.5)
        assert n.fire() == pytest.approx(0.5 + 0.5)

    def test_byzantine_sentinel_uses_capacity(self):
        n = make_neuron(activation=Sigmoid(1.0))
        n.set_fault(ByzantineFault(sign=-1), capacity=0.25)
        assert n.fire() == pytest.approx(0.25)

    def test_offset_fault(self):
        n = make_neuron(activation=Sigmoid(1.0))
        n.set_fault(OffsetFault(offset=0.01), capacity=1.0)
        assert n.fire() == pytest.approx(0.51)

    def test_make_byzantine_sugar(self):
        n = make_neuron(activation=Sigmoid(1.0))
        n.make_byzantine(0.9, capacity=10.0)
        assert n.fire() == pytest.approx(0.9)

    def test_repair(self):
        n = make_neuron(activation=Sigmoid(1.0))
        n.crash()
        n.repair()
        assert n.is_correct and n.fire() == pytest.approx(0.5)

    def test_signals_used_recorded(self):
        n = make_neuron()
        n.receive(Signal(layer=1, src=0, value=1.0, round=0))
        n.fire()
        assert n.signals_used == 1


class TestValidation:
    def test_bad_address(self):
        with pytest.raises(ValueError):
            NeuronProcess(0, 0, np.zeros(2), 0.0, Identity())
