"""Unit tests for pruning (the crash <-> elimination duality)."""

import numpy as np
import pytest

from repro.analysis.pruning import (
    certified_prune,
    lowest_influence_neurons,
    prune_neurons,
)
from repro.core.fep import network_fep
from repro.faults.injector import FaultInjector
from repro.faults.scenarios import crash_scenario
from repro.network import build_conv_net, build_mlp


class TestPruneNeurons:
    def test_equivalent_to_permanent_crash(self, small_net, batch):
        victims = [(1, 2), (1, 5), (2, 0)]
        pruned = prune_neurons(small_net, victims)
        injector = FaultInjector(small_net, capacity=1.0)
        crashed = injector.run(batch, crash_scenario(victims))
        np.testing.assert_allclose(pruned.forward(batch), crashed, atol=1e-12)

    def test_sizes_shrink(self, small_net):
        pruned = prune_neurons(small_net, [(1, 0), (1, 1), (2, 3)])
        assert pruned.layer_sizes == (6, 5)
        assert pruned.input_dim == small_net.input_dim

    def test_cannot_remove_whole_layer(self, small_net):
        with pytest.raises(ValueError, match="all"):
            prune_neurons(small_net, [(2, i) for i in range(6)])

    def test_invalid_address(self, small_net):
        with pytest.raises(ValueError):
            prune_neurons(small_net, [(1, 99)])

    def test_conv_rejected(self):
        net = build_conv_net(8, [3], seed=0)
        with pytest.raises(TypeError, match="dense"):
            prune_neurons(net, [(1, 0)])

    def test_empty_prune_is_identity(self, small_net, batch):
        pruned = prune_neurons(small_net, [])
        np.testing.assert_allclose(pruned.forward(batch), small_net.forward(batch))


class TestLowestInfluence:
    def test_count_respected(self, small_net, batch):
        picks = lowest_influence_neurons(small_net, (2, 1), batch)
        assert len(picks) == 3
        assert sum(1 for a in picks if a.layer == 1) == 2

    def test_cheaper_than_adversarial_victims(self, small_net, batch):
        from repro.faults.adversary import adversarial_crash_scenario

        injector = FaultInjector(small_net, capacity=1.0)
        low = lowest_influence_neurons(small_net, (2, 1), batch)
        low_err = injector.output_error(batch, crash_scenario(low))
        adv = adversarial_crash_scenario(small_net, (2, 1), batch)
        adv_err = injector.output_error(batch, adv)
        assert low_err <= adv_err + 1e-12

    def test_validation(self, small_net, batch):
        with pytest.raises(ValueError):
            lowest_influence_neurons(small_net, (1,), batch)
        with pytest.raises(ValueError, match="all of layer"):
            lowest_influence_neurons(small_net, (8, 0), batch)


class TestCertifiedPrune:
    def _tolerant_net(self):
        return build_mlp(
            2, [10, 8], activation={"name": "sigmoid", "k": 0.5},
            init={"name": "uniform", "scale": 0.08}, output_scale=0.04, seed=31,
        )

    def test_prunes_within_budget(self, rng):
        net = self._tolerant_net()
        x = rng.random((32, 2))
        nominal = net.forward(x)
        pruned, fep = certified_prune(net, 0.5, 0.1, x)
        assert fep <= 0.4 + 1e-12
        assert pruned.num_neurons < net.num_neurons
        # Realised loss within the certified bound.
        assert np.max(np.abs(pruned.forward(x) - nominal)) <= fep + 1e-9

    def test_explicit_distribution(self, rng):
        net = self._tolerant_net()
        x = rng.random((16, 2))
        pruned, fep = certified_prune(net, 0.5, 0.1, x, distribution=(1, 1))
        assert pruned.layer_sizes == (9, 7)
        assert fep == pytest.approx(network_fep(net, (1, 1), mode="crash"))

    def test_untolerated_distribution_rejected(self, rng):
        net = build_mlp(
            2, [6, 5], init={"name": "uniform", "scale": 1.0},
            output_scale=1.0, seed=0,
        )
        with pytest.raises(ValueError, match="not tolerated"):
            certified_prune(net, 0.2, 0.1, rng.random((8, 2)), distribution=(3, 2))

    def test_zero_distribution_returns_copy(self, rng):
        net = self._tolerant_net()
        x = rng.random((8, 2))
        pruned, fep = certified_prune(net, 0.5, 0.1, x, distribution=(0, 0))
        assert fep == 0.0
        np.testing.assert_allclose(pruned.forward(x), net.forward(x))
